"""The stateful overload controller shared by both simulation paths.

One :class:`OverloadController` is built per run (from the declarative
:class:`~repro.overload.policy.OverloadPolicy`) and wired into either
the DES kernel (via :func:`install_overload`) or the event-calendar
fast path (``repro.cluster.faultsim``).  It is deliberately free of
randomness: every decision is a deterministic function of the feed
order, so the two paths — which share arrival traces and service
streams — make identical per-query decisions and the equivalence suite
can compare them exactly.

Decision pipeline for one arriving query (see ``docs/overload.md`` for
the semantics contract):

1. *Admission* — the AIMD controller votes admit/deny.
2. *Degradation* — a denied query may still be served at reduced
   fanout ``k' < kf`` when the order-statistics budget recomputed for
   the first ``k'`` selected servers (Eq. 1-2) clears the full-fanout
   budget plus the current pressure margin.  Failing that, the query
   is rejected.
3. *Breaker routing* — each remaining shard is checked against its
   server's breaker; a refused shard is re-routed to the least-loaded
   permitted replica not already serving this query, or shed.
4. *Coverage floor* — if shedding dropped the query below
   ``ceil(min_coverage * kf)`` dispatched tasks (or below one task
   without a degrade policy), the whole query is rejected instead.
5. *Commit* — probe budgets are charged, shed/degraded events are
   emitted, and the queuing deadline ``t_D`` is re-stamped from the
   budget of the servers actually used.

Feedback flows in through :meth:`record_task` (at dequeue, where the
paper observes deadline misses), :meth:`on_task_complete` (service
samples for the drift monitor), and the fault layer's
:meth:`on_server_fail` / :meth:`on_server_recover` hooks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import ceil
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions import EmpiricalDistribution, ks_distance
from repro.errors import ConfigurationError
from repro.faults.plan import pick_server
from repro.obs.events import (
    BREAKER_CLOSE,
    BREAKER_OPEN,
    CDF_REBOOTSTRAP,
    QUERY_DEGRADED,
    TASK_SHED,
)
from repro.overload.breaker import BreakerBank
from repro.overload.policy import OverloadPolicy
from repro.types import ServiceClass


@dataclass(frozen=True)
class OverloadDecision:
    """The outcome of routing one admitted (possibly degraded) query."""

    servers: Tuple[int, ...]
    deadline: float
    coverage: float
    degraded: bool


class OverloadController:
    """Per-run overload state machine for one simulated cluster."""

    def __init__(self, policy: OverloadPolicy, n_servers: int,
                 estimator, recorder=None) -> None:
        if not policy.active:
            raise ConfigurationError("OverloadPolicy has no mechanism enabled")
        if policy.drift is not None and estimator.online_enabled:
            raise ConfigurationError(
                "drift re-bootstrap requires a static (offline) estimator; "
                "the online updating of §III.B.2 already tracks drift"
            )
        self.policy = policy
        self.n_servers = int(n_servers)
        self.estimator = estimator
        self._recorder = recorder if (recorder is not None
                                      and recorder.enabled) else None
        self.admission = (policy.admission.build()
                          if policy.admission is not None else None)
        self._breakers = (BreakerBank(policy.breakers, n_servers)
                          if policy.breakers is not None else None)
        self._degrade = policy.degrade
        self._drift = policy.drift
        #: EWMA of the observed deadline overshoot at dequeue (ms past
        #: ``t_D``; 0 while tasks dequeue on time).  The degradation
        #: margin — how much extra budget a reduced fanout must buy.
        self.pressure = 0.0
        self._drift_windows: List[Deque[float]] = []
        self._drift_since: List[int] = []
        if policy.drift is not None:
            self._drift_windows = [deque(maxlen=policy.drift.window)
                                   for _ in range(n_servers)]
            self._drift_since = [0] * n_servers
        self.degraded_queries = 0
        self.shed_tasks = 0
        self.cdf_rebootstraps = 0
        #: Queries committed degraded.  Their tasks are best-effort:
        #: they feed the breakers and the pressure EWMA but NOT the
        #: admission window — partial traffic is the relief valve, and
        #: letting its misses clamp the admit probability would make
        #: degradation throttle the full-service traffic it exists to
        #: protect.
        self._degraded_ids: set = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def breaker_trips(self) -> int:
        return self._breakers.trips if self._breakers is not None else 0

    @property
    def admit_probability(self) -> float:
        return (self.admission.admit_probability
                if self.admission is not None else 1.0)

    @property
    def probability_trace(self) -> List[Tuple[float, float]]:
        return (self.admission.probability_trace
                if self.admission is not None else [(0.0, 1.0)])

    def miss_ratio(self) -> float:
        return self.admission.miss_ratio() if self.admission is not None else 0.0

    def breaker_state(self, server_id: int) -> str:
        if self._breakers is None:
            return "closed"
        return self._breakers.state_name(server_id)

    @property
    def has_breakers(self) -> bool:
        return self._breakers is not None

    def server_permitted(self, server_id: int, now: float) -> bool:
        """Whether this server's breaker would accept work at ``now``.

        Pure with respect to the half-open probe budget (nothing is
        consumed); the lazy OPEN→HALF_OPEN refresh it performs is
        idempotent and time-monotone, so calling it at matching points
        on both kernels preserves cross-path determinism.
        """
        if self._breakers is None:
            return True
        return self._breakers.permits(server_id, now)

    def mitigation_up(self, up: Sequence[bool], now: float) -> Sequence[bool]:
        """The ``up`` vector restricted to breaker-permitted servers.

        The fault layer's retry requeue and hedge placement use this so
        mitigation traffic avoids servers whose breakers are refusing
        work (shedding onto a tripping server only deepens its queue).
        Returns ``up`` unchanged without breakers.
        """
        if self._breakers is None:
            return up
        permits = self._breakers.permits
        return [alive and permits(sid, now)
                for sid, alive in enumerate(up)]

    # ------------------------------------------------------------------
    # Arrival-side decision
    # ------------------------------------------------------------------
    def _budget(self, service_class: ServiceClass,
                servers: Sequence[int]) -> float:
        if self.estimator.homogeneous:
            return self.estimator.budget(service_class, fanout=len(servers))
        return self.estimator.budget(service_class, servers=list(servers))

    def _degraded_fanout(self, service_class: ServiceClass,
                         servers: Tuple[int, ...]) -> Optional[int]:
        """Largest ``k' < kf`` (respecting the coverage floor) whose
        recomputed budget clears the pressure margin, or ``None``."""
        assert self._degrade is not None
        fanout = len(servers)
        k_min = max(1, ceil(self._degrade.min_coverage * fanout))
        if k_min >= fanout:
            return None
        required = (self._budget(service_class, servers)
                    + self._degrade.safety * self.pressure)
        for k_prime in range(fanout - 1, k_min - 1, -1):
            if self._budget(service_class, servers[:k_prime]) >= required:
                return k_prime
        return None

    def _route_breakers(self, selection: Sequence[int],
                        depths: Sequence[int], now: float
                        ) -> Tuple[List[int], List[int]]:
        """Replace or shed shards whose breaker refuses them."""
        assert self._breakers is not None
        permitted = [self._breakers.permits(sid, now)
                     for sid in range(self.n_servers)]
        used = set(selection)
        routed: List[int] = []
        shed: List[int] = []
        for sid in selection:
            if permitted[sid]:
                routed.append(sid)
                continue
            replacement = pick_server(depths, permitted, exclude=used)
            if replacement >= 0:
                routed.append(replacement)
                used.add(replacement)
            else:
                shed.append(sid)
        return routed, shed

    def route_query(self, now: float, query_id: int,
                    service_class: ServiceClass, servers: Sequence[int],
                    depths: Sequence[int]) -> Optional[OverloadDecision]:
        """Admit (possibly degraded), re-route, or reject one query.

        ``servers`` is the dispatcher's nominal selection (already
        drawn, so RNG consumption is identical with and without an
        overload policy); ``depths`` are current per-server queue
        depths including in-service tasks.  Returns ``None`` to reject
        the query — nothing has been committed in that case.
        """
        fanout = len(servers)
        selection = tuple(servers)
        if self.admission is not None and not self.admission.admit(now):
            k_prime = (self._degraded_fanout(service_class, selection)
                       if self._degrade is not None else None)
            if k_prime is None:
                return None
            selection = selection[:k_prime]
        if self._breakers is not None:
            routed, shed = self._route_breakers(selection, depths, now)
        else:
            routed, shed = list(selection), []
        floor = (max(1, ceil(self._degrade.min_coverage * fanout))
                 if self._degrade is not None else 1)
        if len(routed) < floor:
            # Below the coverage floor the partial answer is worthless:
            # reject the whole query, committing none of the tentative
            # sheds.
            return None
        recorder = self._recorder
        if self._breakers is not None:
            for sid in routed:
                self._breakers.consume(sid, now)
        for sid in shed:
            self.shed_tasks += 1
            if recorder is not None:
                recorder.emit(TASK_SHED, now, server_id=sid,
                              query_id=query_id)
        coverage = len(routed) / fanout
        degraded = len(routed) < fanout
        if degraded:
            self.degraded_queries += 1
            self._degraded_ids.add(query_id)
            if recorder is not None:
                recorder.emit(QUERY_DEGRADED, now, query_id=query_id,
                              class_name=service_class.name, fanout=fanout,
                              extra={"coverage": coverage,
                                     "dispatched": len(routed)})
        deadline = now + self._budget(service_class, routed)
        return OverloadDecision(tuple(routed), deadline, coverage, degraded)

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def record_task(self, server_id: int, query_id: int, missed: bool,
                    slack: float, now: float) -> None:
        """Feed one dequeue outcome (``slack`` = ``t_D - now``, negative
        on a miss) into admission, pressure, and the breaker.

        Tasks of degraded queries are excluded from the admission
        window (see ``_degraded_ids``) but still feed pressure and the
        per-server breakers — backlog is backlog, whoever queued it.
        """
        if (self.admission is not None
                and query_id not in self._degraded_ids):
            self.admission.record_task(missed, now)
        if self._degrade is not None:
            overshoot = -slack if slack < 0 else 0.0
            alpha = self._degrade.pressure_alpha
            self.pressure += alpha * (overshoot - self.pressure)
        if self._breakers is not None:
            self._emit_breaker(self._breakers.record(server_id, missed, now),
                               server_id, now)

    def on_task_complete(self, server_id: int, duration: float,
                         now: float) -> None:
        """Feed one completed task's service sample to the drift monitor."""
        if self._drift is None:
            return
        window = self._drift_windows[server_id]
        window.append(duration)
        self._drift_since[server_id] += 1
        if (len(window) < self._drift.window
                or self._drift_since[server_id] < self._drift.check_interval):
            return
        self._drift_since[server_id] = 0
        samples = np.asarray(window)
        distance = ks_distance(self.estimator.server_cdf(server_id), samples)
        if distance <= self._drift.threshold:
            return
        self.estimator.rebootstrap(server_id, EmpiricalDistribution(samples))
        self.cdf_rebootstraps += 1
        if self._recorder is not None:
            self._recorder.emit(CDF_REBOOTSTRAP, now, server_id=server_id,
                                extra={"ks_distance": float(distance),
                                       "samples": int(samples.size)})
        window.clear()

    def on_server_fail(self, server_id: int, now: float) -> None:
        if self._breakers is not None:
            self._emit_breaker(self._breakers.on_server_fail(server_id, now),
                               server_id, now)

    def on_server_recover(self, server_id: int, now: float) -> None:
        if self._breakers is not None:
            self._breakers.on_server_recover(server_id, now)

    def _emit_breaker(self, transition: Optional[str], server_id: int,
                      now: float) -> None:
        if transition is None or self._recorder is None:
            return
        event = BREAKER_OPEN if transition == "open" else BREAKER_CLOSE
        self._recorder.emit(event, now, server_id=server_id)


def install_overload(env, handler, servers, policy: OverloadPolicy,
                     recorder=None) -> OverloadController:
    """Wire an :class:`OverloadPolicy` into the DES-kernel path.

    Mirrors :func:`repro.faults.install_faults`: builds the controller
    from the handler's estimator, hooks the handler's submit path, each
    server's dequeue, and — when a :class:`~repro.faults.FaultManager`
    is already installed — its fail/recover notifications.  Call after
    ``install_faults`` when combining the two.
    """
    controller = OverloadController(policy, len(servers),
                                    handler.estimator, recorder)
    if handler.overload is not None:
        raise ConfigurationError("handler already has an overload controller")
    handler.overload = controller

    def _feed_dequeue(task, server, _controller=controller):
        now = server.env.now
        _controller.record_task(server.server_id, task.query_id,
                                now > task.deadline,
                                task.deadline - now, now)

    for server in servers:
        if server.on_dequeue is not None:
            raise ConfigurationError(
                f"server {server.server_id} already has a dequeue hook"
            )
        server.on_dequeue = _feed_dequeue
    if handler.fault_manager is not None:
        handler.fault_manager.overload = controller
    return controller
