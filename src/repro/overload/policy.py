"""Declarative overload-control policies (the config layer).

The overload subsystem composes four cooperating mechanisms behind one
:class:`OverloadPolicy` attached to
:class:`~repro.cluster.config.ClusterConfig`:

1. **Adaptive admission** (:class:`AdaptiveAdmissionPolicy`) — an AIMD
   controller that modulates an admit *probability* toward a target
   deadline-miss ratio instead of latching on/off (§III.C's gate made
   continuous), with a hysteresis band and anti-windup.
2. **Per-server circuit breakers** (:class:`BreakerPolicy`) —
   closed/open/half-open state per server, driven by queuing-deadline
   misses and the fault layer's fail/recover hooks, so a query's shard
   is routed to a replica or shed rather than queued behind a sick
   server.
3. **Graceful partial-fanout degradation** (:class:`DegradePolicy`) —
   a query the admission controller would reject may instead be
   admitted *degraded*: only ``k' < kf`` tasks are dispatched, chosen so
   the order-statistics budget recomputed for ``k'`` (Eq. 1-2) still
   fits, and the reply carries a coverage fraction.
4. **CDF drift re-bootstrap** (:class:`DriftPolicy`) — a KS-distance
   monitor on per-server post-queuing service samples that swaps in a
   re-estimated unloaded CDF when the offline bootstrap has drifted.

Every policy here is an immutable, picklable dataclass validated at
construction (misconfiguration raises
:class:`~repro.errors.ConfigurationError`, which the CLI maps to exit
code 2).  The stateful per-run machinery lives in
:mod:`repro.overload.controller`; :meth:`OverloadPolicy.build` bridges
the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overload.controller import OverloadController


@dataclass(frozen=True)
class AdaptiveAdmissionPolicy:
    """Tuning for the AIMD admit-probability controller.

    ``target_miss_ratio`` replaces the on/off threshold ``R_th``: the
    controller steers the windowed miss ratio toward it, decreasing the
    admit probability multiplicatively while the ratio sits above
    ``target * (1 + hysteresis)`` and increasing additively while it
    sits below ``target * (1 - hysteresis)``.  Inside the band the
    probability holds — the hysteresis is what stops the controller
    from oscillating on a noisy miss process.

    ``max_latch_ms`` is the anti-windup escape hatch: if no task
    outcome has arrived for that long, the whole window is flushed so
    a saturated all-miss window cannot latch the controller shut after
    the load that produced it has vanished.
    """

    target_miss_ratio: float = 0.02
    window_tasks: int = 5_000
    window_ms: Optional[float] = None
    min_samples: int = 200
    decrease: float = 0.7
    increase: float = 0.08
    floor: float = 0.05
    hysteresis: float = 0.25
    ctl_interval_ms: float = 25.0
    max_latch_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 < self.target_miss_ratio < 1:
            raise ConfigurationError(
                "target_miss_ratio must be a ratio in (0, 1), got "
                f"{self.target_miss_ratio}"
            )
        if not 0 <= self.hysteresis < 1:
            raise ConfigurationError(
                f"hysteresis must be in [0, 1), got {self.hysteresis}"
            )
        if self.max_latch_ms is not None and self.max_latch_ms <= 0:
            raise ConfigurationError(
                f"max_latch_ms must be positive, got {self.max_latch_ms}"
            )
        # The remaining fields share DeadlineMissRatioAdmission's
        # constraints; build a throwaway controller so bad values fail
        # here, at config time, instead of mid-run in a worker process.
        self.build()

    def build(self) -> "AdaptiveAdmission":
        from repro.overload.admission import AdaptiveAdmission

        return AdaptiveAdmission(
            target_miss_ratio=self.target_miss_ratio,
            window_tasks=self.window_tasks,
            window_ms=self.window_ms,
            min_samples=self.min_samples,
            decrease=self.decrease,
            increase=self.increase,
            floor=self.floor,
            hysteresis=self.hysteresis,
            ctl_interval_ms=self.ctl_interval_ms,
            max_latch_ms=self.max_latch_ms,
        )


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-server circuit-breaker thresholds.

    A CLOSED breaker trips OPEN after ``miss_threshold`` *consecutive*
    queuing-deadline misses on its server (or immediately when the
    fault layer reports the server failed).  After ``open_ms`` it
    half-opens and lets through at most ``half_open_probes``
    outstanding probe tasks; ``close_successes`` consecutive on-time
    probes close it, a single missed probe re-trips it.
    """

    miss_threshold: int = 5
    open_ms: float = 50.0
    half_open_probes: int = 3
    close_successes: int = 3

    def __post_init__(self) -> None:
        if self.miss_threshold <= 0:
            raise ConfigurationError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}"
            )
        if self.open_ms <= 0:
            raise ConfigurationError(
                f"open_ms must be positive, got {self.open_ms}"
            )
        if self.half_open_probes <= 0:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )
        if self.close_successes <= 0:
            raise ConfigurationError(
                f"close_successes must be >= 1, got {self.close_successes}"
            )


@dataclass(frozen=True)
class DegradePolicy:
    """Partial-fanout degradation bounds.

    ``min_coverage`` is the floor on the served fraction of a query's
    fanout: a degraded query dispatches at least
    ``ceil(min_coverage * kf)`` tasks, and a query that cannot be
    served at that coverage (breakers shedding below the floor, or no
    reduced fanout whose recomputed budget clears the pressure margin)
    is rejected outright.

    ``pressure_alpha`` is the EWMA gain on the observed deadline
    overshoot (ms past ``t_D`` at dequeue); ``safety`` scales that
    pressure into the extra budget a reduced fanout must buy before
    degradation is worthwhile.
    """

    min_coverage: float = 0.5
    pressure_alpha: float = 0.05
    safety: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.min_coverage <= 1:
            raise ConfigurationError(
                f"min_coverage must be in (0, 1], got {self.min_coverage}"
            )
        if not 0 < self.pressure_alpha <= 1:
            raise ConfigurationError(
                f"pressure_alpha must be in (0, 1], got {self.pressure_alpha}"
            )
        if self.safety < 0:
            raise ConfigurationError(
                f"safety must be >= 0, got {self.safety}"
            )


@dataclass(frozen=True)
class DriftPolicy:
    """CDF drift detection thresholds.

    Per server, the last ``window`` post-queuing service samples are
    compared against the estimator's current unloaded CDF every
    ``check_interval`` completions (once the window is full).  When the
    KS distance exceeds ``threshold``, the server's CDF is replaced by
    the empirical distribution of the window, future budgets are
    re-stamped (the estimator's tail cache is invalidated), and a
    ``CDF_REBOOTSTRAP`` event is emitted.
    """

    threshold: float = 0.15
    window: int = 500
    check_interval: int = 200

    def __post_init__(self) -> None:
        if not 0 < self.threshold < 1:
            raise ConfigurationError(
                f"threshold must be in (0, 1), got {self.threshold}"
            )
        if self.window < 8:
            raise ConfigurationError(
                f"window must be >= 8 samples, got {self.window}"
            )
        if self.check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )


@dataclass(frozen=True)
class OverloadPolicy:
    """The declarative bundle of overload-control mechanisms.

    Any subset may be enabled by setting its sub-policy; ``None`` turns
    the mechanism off.  Degradation is the admission controller's
    reject alternative, so ``degrade`` requires ``admission``.
    """

    admission: Optional[AdaptiveAdmissionPolicy] = None
    breakers: Optional[BreakerPolicy] = None
    degrade: Optional[DegradePolicy] = None
    drift: Optional[DriftPolicy] = None

    def __post_init__(self) -> None:
        if self.degrade is not None and self.admission is None:
            raise ConfigurationError(
                "DegradePolicy requires AdaptiveAdmissionPolicy: "
                "degradation serves the queries adaptive admission "
                "would otherwise reject"
            )

    @property
    def active(self) -> bool:
        """Whether any mechanism is enabled."""
        return (self.admission is not None or self.breakers is not None
                or self.degrade is not None or self.drift is not None)

    def build(self, n_servers: int, estimator, recorder=None
              ) -> "OverloadController":
        """Materialize the stateful per-run controller."""
        from repro.overload.controller import OverloadController

        return OverloadController(self, n_servers, estimator, recorder)
