"""Workload generation (paper §IV.A).

A DU workload is characterized by a query arrival process, a query
fanout distribution and a task service-time distribution.  This package
provides all three plus service-class mixes, the reconstructed
Tailbench workload models, and trace record/replay.
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    MMPPArrivals,
    ParetoArrivals,
    PoissonArrivals,
)
from repro.workloads.fanout import (
    CategoricalFanout,
    FanoutDistribution,
    FixedFanout,
    UniformFanout,
    ZipfFanout,
    inverse_proportional_fanout,
)
from repro.workloads.classes import ClassMix, single_class_mix, uniform_class_mix
from repro.workloads.tailbench import (
    TAILBENCH_WORKLOADS,
    TailbenchWorkload,
    get_workload,
)
from repro.workloads.generator import (
    QueryStream,
    Workload,
    arrival_rate_for_load,
    generate_queries,
    generate_query_arrays,
    offered_load,
)
from repro.workloads.sharding import ShardMap, ShardedPlacement
from repro.workloads.traces import load_trace, save_trace

__all__ = [
    "ArrivalProcess",
    "CategoricalFanout",
    "ClassMix",
    "DeterministicArrivals",
    "FanoutDistribution",
    "FixedFanout",
    "MMPPArrivals",
    "ParetoArrivals",
    "PoissonArrivals",
    "QueryStream",
    "ShardMap",
    "ShardedPlacement",
    "TAILBENCH_WORKLOADS",
    "TailbenchWorkload",
    "UniformFanout",
    "Workload",
    "ZipfFanout",
    "arrival_rate_for_load",
    "generate_queries",
    "generate_query_arrays",
    "get_workload",
    "inverse_proportional_fanout",
    "load_trace",
    "offered_load",
    "save_trace",
    "single_class_mix",
    "uniform_class_mix",
]
