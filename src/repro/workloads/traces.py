"""Trace record and replay.

Traces decouple workload generation from simulation: a trace recorded
once can drive every queuing policy identically (the paper compares
policies on "three traces generated from the Tailbench benchmark
suite").  Format: JSON lines — a header object describing the service
classes followed by one compact object per query.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.errors import ConfigurationError
from repro.types import QuerySpec, ServiceClass

_FORMAT_VERSION = 1


def save_trace(specs: Sequence[QuerySpec], path: Union[str, Path]) -> None:
    """Write query specs as a JSONL trace file."""
    specs = list(specs)
    classes: Dict[str, ServiceClass] = {}
    for spec in specs:
        existing = classes.get(spec.service_class.name)
        if existing is not None and existing != spec.service_class:
            raise ConfigurationError(
                f"two different classes named {spec.service_class.name!r}"
            )
        classes[spec.service_class.name] = spec.service_class

    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "version": _FORMAT_VERSION,
            "classes": [
                {
                    "name": cls.name,
                    "slo_ms": cls.slo_ms,
                    "percentile": cls.percentile,
                    "priority": cls.priority,
                }
                for cls in classes.values()
            ],
        }
        fh.write(json.dumps(header) + "\n")
        for spec in specs:
            row = {
                "id": spec.query_id,
                "t": spec.arrival_time,
                "k": spec.fanout,
                "c": spec.service_class.name,
            }
            if spec.servers is not None:
                row["s"] = list(spec.servers)
            fh.write(json.dumps(row) + "\n")


def load_trace(path: Union[str, Path]) -> List[QuerySpec]:
    """Read a JSONL trace back into query specs."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ConfigurationError(f"empty trace file: {path}")
        header = json.loads(header_line)
        if header.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported trace version {header.get('version')!r}"
            )
        classes = {
            entry["name"]: ServiceClass(
                name=entry["name"],
                slo_ms=entry["slo_ms"],
                percentile=entry["percentile"],
                priority=entry["priority"],
            )
            for entry in header["classes"]
        }
        specs: List[QuerySpec] = []
        for line in fh:
            if not line.strip():
                continue
            row = json.loads(line)
            try:
                service_class = classes[row["c"]]
            except KeyError:
                raise ConfigurationError(
                    f"query {row['id']} references unknown class {row['c']!r}"
                ) from None
            servers = tuple(row["s"]) if "s" in row else None
            specs.append(
                QuerySpec(
                    query_id=row["id"],
                    arrival_time=row["t"],
                    fanout=row["k"],
                    service_class=service_class,
                    servers=servers,
                )
            )
    return specs
