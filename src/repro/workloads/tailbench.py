"""Reconstructed Tailbench service-time models (paper Fig. 3, Table II).

The paper drives its simulation with task service-time samples from
three Tailbench applications: **Masstree** (in-memory key-value store),
**Shore** (SSD-backed transactional database) and **Xapian** (web
search).  We do not have the original sample traces, so each workload
is rebuilt as a :class:`~repro.distributions.PiecewiseLinearCDF` that
is *calibrated to every statistic the paper publishes*:

* the mean task service time ``T_m`` (Table II);
* the unloaded 99th-percentile query tails at fanouts 1/10/100
  (Table II), which pin the CDF at probabilities 0.99, 0.99^(1/10)
  and 0.99^(1/100) via the order-statistics identity Eq. 2;
* the support ranges and overall CDF shapes visible in Fig. 3.

Body-shape anchors below the 95th percentile are read off Fig. 3
approximately and then *scaled* so the model's exact mean equals the
published ``T_m`` (bisection on the scale factor; the tail anchors stay
fixed because they are published numbers).  The fidelity of this
substitution is itself measured: ``benchmarks/bench_table2_unloaded_tails.py``
recomputes Table II from the models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.distributions import PiecewiseLinearCDF, iid_max_quantile
from repro.distributions.piecewise import calibrated_piecewise_cdf
from repro.errors import ConfigurationError

#: Percentile used throughout the paper's evaluation.
PAPER_PERCENTILE = 99.0


@dataclass(frozen=True)
class TailbenchWorkload:
    """One reconstructed Tailbench application workload."""

    name: str
    description: str
    service_time: PiecewiseLinearCDF
    #: Published mean task service time ``T_m`` in ms (Table II).
    paper_mean_ms: float
    #: Published unloaded 99th-percentile query tails at fanout 1/10/100.
    paper_x99_ms: Dict[int, float] = field(default_factory=dict)

    def unloaded_query_tail(self, fanout: int,
                            percentile: float = PAPER_PERCENTILE) -> float:
        """``x_p^u(k_f)`` for a homogeneous cluster (Eq. 2)."""
        return iid_max_quantile(self.service_time, fanout, percentile / 100.0)

    def table2_row(self) -> Dict[str, float]:
        """Model-derived Table II row: mean and x99 at fanouts 1/10/100."""
        return {
            "T_m": self.service_time.mean(),
            "x99(1)": self.unloaded_query_tail(1),
            "x99(10)": self.unloaded_query_tail(10),
            "x99(100)": self.unloaded_query_tail(100),
        }


def _probability_for_fanout(fanout: int, percentile: float = PAPER_PERCENTILE) -> float:
    """The base-CDF probability pinned by ``x_p^u(fanout)`` (Eq. 2 inverse)."""
    return (percentile / 100.0) ** (1.0 / fanout)


def _build_masstree() -> TailbenchWorkload:
    p99 = _probability_for_fanout(1)
    p99_10 = _probability_for_fanout(10)
    p99_100 = _probability_for_fanout(100)
    model = calibrated_piecewise_cdf(
        body_anchors=[(0.10, 0.14), (0.30, 0.16), (0.60, 0.18), (0.90, 0.20)],
        fixed_anchors=[(0.95, 0.210), (p99, 0.219), (p99_10, 0.247),
                       (p99_100, 0.473)],
        minimum=0.08,
        maximum=0.70,
        target_mean=0.176,
    )
    return TailbenchWorkload(
        name="masstree",
        description="in-memory key-value store (Tailbench Masstree)",
        service_time=model,
        paper_mean_ms=0.176,
        paper_x99_ms={1: 0.219, 10: 0.247, 100: 0.473},
    )


def _build_shore() -> TailbenchWorkload:
    p99 = _probability_for_fanout(1)
    p99_10 = _probability_for_fanout(10)
    p99_100 = _probability_for_fanout(100)
    model = calibrated_piecewise_cdf(
        body_anchors=[(0.30, 0.15), (0.60, 0.25), (0.85, 0.40)],
        fixed_anchors=[(0.95, 1.20), (p99, 2.095), (p99_10, 2.721),
                       (p99_100, 2.829)],
        minimum=0.05,
        maximum=3.00,
        target_mean=0.341,
    )
    return TailbenchWorkload(
        name="shore",
        description="SSD-based transactional database (Tailbench Shore)",
        service_time=model,
        paper_mean_ms=0.341,
        paper_x99_ms={1: 2.095, 10: 2.721, 100: 2.829},
    )


def _build_xapian() -> TailbenchWorkload:
    p99 = _probability_for_fanout(1)
    p99_10 = _probability_for_fanout(10)
    p99_100 = _probability_for_fanout(100)
    model = calibrated_piecewise_cdf(
        body_anchors=[(0.25, 0.55), (0.50, 0.75), (0.80, 1.10)],
        fixed_anchors=[(0.95, 1.80), (p99, 2.590), (p99_10, 2.998),
                       (p99_100, 3.308)],
        minimum=0.30,
        maximum=3.50,
        target_mean=0.925,
    )
    return TailbenchWorkload(
        name="xapian",
        description="web search engine (Tailbench Xapian)",
        service_time=model,
        paper_mean_ms=0.925,
        paper_x99_ms={1: 2.590, 10: 2.998, 100: 3.308},
    )


#: The three workloads evaluated in the paper, keyed by name.
TAILBENCH_WORKLOADS: Dict[str, TailbenchWorkload] = {
    workload.name: workload
    for workload in (_build_masstree(), _build_shore(), _build_xapian())
}

#: Per-workload single-class SLO sets swept in Fig. 4 (ms).
FIG4_SLOS_MS: Dict[str, List[float]] = {
    "masstree": [0.8, 1.0, 1.2, 1.4],
    "shore": [4.0, 6.0, 8.0, 10.0],
    "xapian": [6.0, 7.0, 10.0, 12.0],
}

#: Per-workload (class I, class II) SLO pairs used in Fig. 6 (ms).
FIG6_CLASS_SLOS_MS: Dict[str, Tuple[float, float]] = {
    "masstree": (1.0, 1.5),
    "shore": (6.0, 10.0),
    "xapian": (10.0, 15.0),
}


def get_workload(name: str) -> TailbenchWorkload:
    """Look up a reconstructed Tailbench workload by name."""
    try:
        return TAILBENCH_WORKLOADS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(TAILBENCH_WORKLOADS))
        raise ConfigurationError(f"unknown workload {name!r}; known: {known}") from None
