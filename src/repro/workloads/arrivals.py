"""Query arrival processes.

The paper models arrivals as Poisson by default and uses a burstier
Pareto interarrival process for the sensitivity case in §IV.B
(Fig. 5b).  An arrival process here is just a named interarrival
distribution with a rate; the simulator asks for blocks of arrival
times.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions import BoundedPareto, Deterministic, Distribution, Exponential
from repro.errors import ConfigurationError


class ArrivalProcess:
    """Renewal arrival process defined by an interarrival distribution."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)

    def interarrival_distribution(self) -> Distribution:
        raise NotImplementedError

    def arrival_times(self, rng: np.random.Generator, n: int,
                      start: float = 0.0) -> np.ndarray:
        """``n`` arrival timestamps starting after ``start``."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        gaps = np.asarray(self.interarrival_distribution().sample(rng, n),
                          dtype=float)
        return start + np.cumsum(gaps)

    def with_rate(self, rate: float) -> "ArrivalProcess":
        """A copy of this process re-parameterized to a new mean rate.

        The max-load bisection sweeps the rate while keeping the
        process *shape* fixed, which is what this hook provides.
        """
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class PoissonArrivals(ArrivalProcess):
    """Poisson process: exponential interarrivals with mean ``1/rate``."""

    def interarrival_distribution(self) -> Distribution:
        return Exponential(self.rate)

    def with_rate(self, rate: float) -> "PoissonArrivals":
        return PoissonArrivals(rate)


class ParetoArrivals(ArrivalProcess):
    """Bursty renewal process with bounded-Pareto interarrivals.

    ``shape`` close to 1 gives strong burstiness; the bounds keep the
    mean finite so a load can be defined.  ``spread`` is the ratio of
    the longest to the shortest possible gap.
    """

    def __init__(self, rate: float, shape: float = 1.1,
                 spread: float = 1000.0) -> None:
        super().__init__(rate)
        if shape <= 0:
            raise ConfigurationError(f"shape must be positive, got {shape}")
        if spread <= 1:
            raise ConfigurationError(f"spread must exceed 1, got {spread}")
        self.shape = float(shape)
        self.spread = float(spread)
        self._dist = BoundedPareto.from_mean(1.0 / rate, shape, spread)

    def interarrival_distribution(self) -> Distribution:
        return self._dist

    def with_rate(self, rate: float) -> "ParetoArrivals":
        return ParetoArrivals(rate, self.shape, self.spread)


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process alternates between a *calm* and a *burst* state with
    exponentially distributed sojourns; arrivals are Poisson at the
    state's rate.  Unlike the (renewal) Pareto process, an MMPP has
    *correlated* interarrival times — consecutive arrivals cluster in
    burst episodes — which probes a different kind of burstiness than
    Fig. 5(b).

    Parameters
    ----------
    rate:
        Long-run mean arrival rate.
    burst_factor:
        Ratio of the burst-state rate to the calm-state rate.
    burst_fraction:
        Long-run fraction of time spent in the burst state.
    mean_cycle_arrivals:
        Mean number of arrivals per calm+burst cycle — sets the sojourn
        time scale relative to the arrival rate.
    """

    def __init__(
        self,
        rate: float,
        burst_factor: float = 5.0,
        burst_fraction: float = 0.2,
        mean_cycle_arrivals: float = 500.0,
    ) -> None:
        super().__init__(rate)
        if burst_factor <= 1:
            raise ConfigurationError(
                f"burst_factor must exceed 1, got {burst_factor}"
            )
        if not 0 < burst_fraction < 1:
            raise ConfigurationError(
                f"burst_fraction must be in (0, 1), got {burst_fraction}"
            )
        if mean_cycle_arrivals <= 0:
            raise ConfigurationError(
                f"mean_cycle_arrivals must be positive, got {mean_cycle_arrivals}"
            )
        self.burst_factor = float(burst_factor)
        self.burst_fraction = float(burst_fraction)
        self.mean_cycle_arrivals = float(mean_cycle_arrivals)
        # Long-run rate = (1-f)·r_calm + f·r_burst with r_burst = b·r_calm.
        f, b = self.burst_fraction, self.burst_factor
        self._rate_calm = rate / (1.0 - f + f * b)
        self._rate_burst = b * self._rate_calm
        cycle_ms = mean_cycle_arrivals / rate
        self._sojourn_calm = cycle_ms * (1.0 - f)
        self._sojourn_burst = cycle_ms * f

    def interarrival_distribution(self) -> Distribution:
        raise ConfigurationError(
            "an MMPP is not a renewal process; use arrival_times()"
        )

    def arrival_times(self, rng: np.random.Generator, n: int,
                      start: float = 0.0) -> np.ndarray:
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        times = np.empty(n)
        t = start
        in_burst = bool(rng.random() < self.burst_fraction)
        switch_at = t + rng.exponential(
            self._sojourn_burst if in_burst else self._sojourn_calm
        )
        produced = 0
        while produced < n:
            rate = self._rate_burst if in_burst else self._rate_calm
            candidate = t + rng.exponential(1.0 / rate)
            if candidate < switch_at:
                t = candidate
                times[produced] = t
                produced += 1
            else:
                t = switch_at
                in_burst = not in_burst
                switch_at = t + rng.exponential(
                    self._sojourn_burst if in_burst else self._sojourn_calm
                )
        return times

    def with_rate(self, rate: float) -> "MMPPArrivals":
        return MMPPArrivals(rate, self.burst_factor, self.burst_fraction,
                            self.mean_cycle_arrivals)


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals — useful for deterministic tests."""

    def interarrival_distribution(self) -> Distribution:
        return Deterministic(1.0 / self.rate)

    def arrival_times(self, rng: Optional[np.random.Generator], n: int,
                      start: float = 0.0) -> np.ndarray:
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        return start + (np.arange(1, n + 1) / self.rate)

    def with_rate(self, rate: float) -> "DeterministicArrivals":
        return DeterministicArrivals(rate)
