"""Query fanout distributions.

The paper's main simulation uses three fanout types {1, 10, 100} with
probabilities inversely proportional to the fanout (P(1)=100/111,
P(10)=10/111, P(100)=1/111 — §IV.B), which equalizes the expected task
volume per type, "similar to the one observed by Facebook".  OLDI
services use a fixed fanout equal to the cluster size (§IV.C).  A
truncated-Zipf model covers social-network-style long-tailed fanouts.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class FanoutDistribution:
    """Discrete distribution over fanout values ``k >= 1``."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError

    def support(self) -> Tuple[int, ...]:
        """The distinct fanout values with non-zero probability."""
        raise NotImplementedError

    def pmf(self) -> Dict[int, float]:
        """Mapping fanout -> probability."""
        raise NotImplementedError


class FixedFanout(FanoutDistribution):
    """Every query fans out to exactly ``k`` servers (OLDI)."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {k}")
        self.k = int(k)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.k, dtype=np.int64)

    def mean(self) -> float:
        return float(self.k)

    def support(self) -> Tuple[int, ...]:
        return (self.k,)

    def pmf(self) -> Dict[int, float]:
        return {self.k: 1.0}


class CategoricalFanout(FanoutDistribution):
    """Arbitrary finite fanout distribution given as ``{k: prob}``."""

    def __init__(self, probabilities: Dict[int, float]) -> None:
        if not probabilities:
            raise ConfigurationError("need at least one fanout value")
        ks = sorted(probabilities)
        ps = np.asarray([probabilities[k] for k in ks], dtype=float)
        if any(k < 1 for k in ks):
            raise ConfigurationError("fanouts must be >= 1")
        if np.any(ps < 0) or not np.isclose(ps.sum(), 1.0):
            raise ConfigurationError("probabilities must be non-negative and sum to 1")
        self._ks = np.asarray(ks, dtype=np.int64)
        self._ps = ps / ps.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.choice(self._ks, size=size, p=self._ps)

    def mean(self) -> float:
        return float(np.dot(self._ks, self._ps))

    def support(self) -> Tuple[int, ...]:
        return tuple(int(k) for k in self._ks)

    def pmf(self) -> Dict[int, float]:
        return {int(k): float(p) for k, p in zip(self._ks, self._ps)}


def inverse_proportional_fanout(fanouts: Sequence[int]) -> CategoricalFanout:
    """P(k) ∝ 1/k over the given fanouts (the paper's §IV.B mix).

    ``inverse_proportional_fanout([1, 10, 100])`` gives exactly
    P(1)=100/111, P(10)=10/111, P(100)=1/111.
    """
    if not fanouts:
        raise ConfigurationError("need at least one fanout value")
    weights = {int(k): 1.0 / k for k in fanouts}
    total = sum(weights.values())
    return CategoricalFanout({k: w / total for k, w in weights.items()})


class UniformFanout(FanoutDistribution):
    """Uniform over integers ``[low, high]``."""

    def __init__(self, low: int, high: int) -> None:
        if not 1 <= low <= high:
            raise ConfigurationError(f"need 1 <= low <= high, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=size, dtype=np.int64)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def support(self) -> Tuple[int, ...]:
        return tuple(range(self.low, self.high + 1))

    def pmf(self) -> Dict[int, float]:
        n = self.high - self.low + 1
        return {k: 1.0 / n for k in self.support()}


class ZipfFanout(FanoutDistribution):
    """Truncated Zipf: P(k) ∝ k^-alpha for k in [1, k_max].

    Models social-networking fanouts ("one to several hundreds with 65%
    under 20" — paper §II.A); ``alpha≈1.3, k_max≈300`` roughly matches
    that description and is used by the social-network example.
    """

    def __init__(self, alpha: float, k_max: int) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha}")
        if k_max < 1:
            raise ConfigurationError(f"k_max must be >= 1, got {k_max}")
        self.alpha = float(alpha)
        self.k_max = int(k_max)
        ks = np.arange(1, k_max + 1, dtype=np.int64)
        ps = ks.astype(float) ** -alpha
        self._ks = ks
        self._ps = ps / ps.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.choice(self._ks, size=size, p=self._ps)

    def mean(self) -> float:
        return float(np.dot(self._ks, self._ps))

    def support(self) -> Tuple[int, ...]:
        return tuple(int(k) for k in self._ks)

    def pmf(self) -> Dict[int, float]:
        return {int(k): float(p) for k, p in zip(self._ks, self._ps)}
