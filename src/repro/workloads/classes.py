"""Service-class mixes.

A query belongs to one service class that carries its tail-latency SLO
(paper §I: "a DU service that supports multiple classes of queries").
A :class:`ClassMix` assigns classes to queries with given probabilities;
the paper's two-class experiments assign each query to either class
with equal probability (§IV.B, §IV.C).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import ServiceClass


class ClassMix:
    """A categorical distribution over service classes."""

    def __init__(self, entries: Sequence[Tuple[ServiceClass, float]]) -> None:
        if not entries:
            raise ConfigurationError("need at least one service class")
        probs = np.asarray([p for _, p in entries], dtype=float)
        if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
            raise ConfigurationError("class probabilities must be non-negative "
                                     "and sum to 1")
        names = [cls.name for cls, _ in entries]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate class names in mix: {names}")
        self._classes: List[ServiceClass] = [cls for cls, _ in entries]
        self._probs = probs / probs.sum()

    @property
    def classes(self) -> Tuple[ServiceClass, ...]:
        return tuple(self._classes)

    def probabilities(self) -> Dict[str, float]:
        return {cls.name: float(p) for cls, p in zip(self._classes, self._probs)}

    def sample_indices(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Class *indices* (cheap for the hot loop; map via ``classes``)."""
        if len(self._classes) == 1:
            return np.zeros(size, dtype=np.int64)
        return rng.choice(len(self._classes), size=size, p=self._probs)

    def sample(self, rng: np.random.Generator, size: int) -> List[ServiceClass]:
        return [self._classes[i] for i in self.sample_indices(rng, size)]

    def strictest_slo(self) -> float:
        return min(cls.slo_ms for cls in self._classes)

    def __len__(self) -> int:
        return len(self._classes)


def single_class_mix(service_class: ServiceClass) -> ClassMix:
    """All queries share one SLO (paper §IV.B single-class case)."""
    return ClassMix([(service_class, 1.0)])


def uniform_class_mix(classes: Sequence[ServiceClass]) -> ClassMix:
    """Equal probability per class (the paper's two/four-class cases)."""
    if not classes:
        raise ConfigurationError("need at least one service class")
    p = 1.0 / len(classes)
    return ClassMix([(cls, p) for cls in classes])
