"""Workload assembly and query generation.

A :class:`Workload` bundles the three ingredients of §IV.A (arrival
process, fanout distribution, service-time distribution) plus the
service-class mix, and knows how to re-rate itself to a target offered
load.  :func:`generate_queries` materializes query specs for the
simulator or for trace recording.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

import numpy as np

from repro.distributions import Distribution
from repro.errors import ConfigurationError
from repro.types import QuerySpec
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.classes import ClassMix
from repro.workloads.fanout import FanoutDistribution


def arrival_rate_for_load(
    load: float,
    n_servers: int,
    mean_service_ms: float,
    mean_fanout: float,
) -> float:
    """Query arrival rate (queries/ms) producing the given offered load.

    Offered load is the standard utilization ``ρ = λ·E[k_f]·E[S] / N``:
    each query contributes ``E[k_f]`` tasks of mean service ``E[S]``
    spread over ``N`` servers.
    """
    if not 0 < load:
        raise ConfigurationError(f"load must be positive, got {load}")
    if n_servers < 1:
        raise ConfigurationError(f"need >= 1 server, got {n_servers}")
    if mean_service_ms <= 0 or mean_fanout <= 0:
        raise ConfigurationError("mean service time and fanout must be positive")
    return load * n_servers / (mean_fanout * mean_service_ms)


def offered_load(
    arrival_rate: float,
    n_servers: int,
    mean_service_ms: float,
    mean_fanout: float,
) -> float:
    """Inverse of :func:`arrival_rate_for_load`."""
    return arrival_rate * mean_fanout * mean_service_ms / n_servers


@dataclass(frozen=True)
class Workload:
    """A complete DU workload specification."""

    name: str
    arrivals: ArrivalProcess
    fanout: FanoutDistribution
    class_mix: ClassMix
    service_time: Distribution

    def mean_service_ms(self) -> float:
        return self.service_time.mean()

    def load(self, n_servers: int) -> float:
        """Offered load of this workload on ``n_servers`` servers."""
        return offered_load(self.arrivals.rate, n_servers,
                            self.mean_service_ms(), self.fanout.mean())

    def at_load(self, load: float, n_servers: int) -> "Workload":
        """A copy re-rated so its offered load on ``n_servers`` is ``load``."""
        rate = arrival_rate_for_load(load, n_servers, self.mean_service_ms(),
                                     self.fanout.mean())
        return replace(self, arrivals=self.arrivals.with_rate(rate))


def generate_query_arrays(
    workload: Workload,
    n: int,
    rng: np.random.Generator,
    start: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The array form of :func:`generate_queries`.

    Returns ``(arrival_times, fanouts, class_indices)`` drawn with the
    exact same RNG consumption as :func:`generate_queries` (which is
    implemented on top of this), so consumers that only need columns —
    notably the simulation kernel's generated-workload fast path — skip
    materializing ``n`` :class:`~repro.types.QuerySpec` objects without
    perturbing any seeded trace.  ``class_indices`` index into
    ``workload.class_mix.classes``.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    arrival_rng, fanout_rng, class_rng = rng.spawn(3)
    times = np.asarray(
        workload.arrivals.arrival_times(arrival_rng, n, start),
        dtype=np.float64,
    )
    fanouts = np.asarray(workload.fanout.sample(fanout_rng, n), dtype=np.int64)
    class_indices = np.asarray(
        workload.class_mix.sample_indices(class_rng, n), dtype=np.int64
    )
    return times, fanouts, class_indices


def generate_queries(
    workload: Workload,
    n: int,
    rng: np.random.Generator,
    start: float = 0.0,
) -> List[QuerySpec]:
    """Materialize ``n`` query specs (arrival time, fanout, class).

    Separate child RNG streams per component keep comparisons between
    queuing policies paired: re-running with the same seed produces the
    same queries regardless of how the consumer draws service times.
    """
    times, fanouts, class_indices = generate_query_arrays(
        workload, n, rng, start
    )
    classes = workload.class_mix.classes
    return [
        QuerySpec(
            query_id=i,
            arrival_time=float(times[i]),
            fanout=int(fanouts[i]),
            service_class=classes[class_indices[i]],
        )
        for i in range(n)
    ]


class QueryStream:
    """Lazy query generator for open-ended (time-bounded) simulations."""

    def __init__(self, workload: Workload, rng: np.random.Generator,
                 start: float = 0.0, block: int = 4096) -> None:
        self._workload = workload
        self._rng = rng
        self._clock = start
        self._block = block
        self._next_id = 0
        self._pending: List[QuerySpec] = []

    def __iter__(self) -> Iterator[QuerySpec]:
        return self

    def __next__(self) -> QuerySpec:
        if not self._pending:
            batch = generate_queries(self._workload, self._block, self._rng,
                                     start=self._clock)
            batch = [
                QuerySpec(
                    query_id=spec.query_id + self._next_id,
                    arrival_time=spec.arrival_time,
                    fanout=spec.fanout,
                    service_class=spec.service_class,
                )
                for spec in batch
            ]
            self._next_id += len(batch)
            self._clock = batch[-1].arrival_time
            self._pending = list(reversed(batch))
        return self._pending.pop()
