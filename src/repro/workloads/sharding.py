"""Data-shard placement (paper §II.A).

The paper's model has each task server "hosting a piece of the total
dataset, also known as a shard"; a query's fanout is determined by
*which shards it touches*, not by a free choice of servers.  The main
experiments abstract this away (uniform random selection is equivalent
when shards are spread uniformly and queries touch random shards), but
a shard map matters when:

* shards are replicated (a task can go to any replica — the scheduler
  can pick the least loaded);
* shard popularity is skewed (hot shards concentrate load on their
  hosts, the §I "skewed workloads" outlier source).

:class:`ShardMap` assigns ``n_shards`` to ``n_servers`` round-robin
with ``replication`` copies; :class:`ShardedPlacement` is a
``ClusterConfig.placement`` hook that maps a query's fanout to a set of
distinct servers hosting the shards it touches, with optional Zipf
shard popularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.types import QuerySpec


class ShardMap:
    """Static shard-to-server assignment with replication."""

    def __init__(self, n_shards: int, n_servers: int,
                 replication: int = 1) -> None:
        if n_shards < 1 or n_servers < 1:
            raise ConfigurationError("need at least one shard and one server")
        if not 1 <= replication <= n_servers:
            raise ConfigurationError(
                f"replication must be in [1, {n_servers}], got {replication}"
            )
        self.n_shards = int(n_shards)
        self.n_servers = int(n_servers)
        self.replication = int(replication)
        # Shard s lives on servers (s + r·stride) mod N for r replicas;
        # a prime-free stride of max(1, N // replication) spreads copies.
        stride = max(1, n_servers // replication)
        self._replicas: List[Tuple[int, ...]] = [
            tuple((shard + r * stride) % n_servers
                  for r in range(replication))
            for shard in range(n_shards)
        ]

    def replicas(self, shard: int) -> Tuple[int, ...]:
        """Servers hosting a shard.

        The bound is checked explicitly — including negatives, which
        Python list indexing would otherwise wrap around silently.
        """
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} outside [0, {self.n_shards})"
            )
        return self._replicas[shard]

    def validate_cluster(self, n_servers: int) -> None:
        """Check this map targets exactly a flat ``0..n_servers-1`` index.

        A :class:`ShardedPlacement` built over this map emits server
        ids in ``[0, self.n_servers)``; driving it against a cluster of
        a different size silently concentrates load (map smaller than
        cluster) or points tasks at servers that do not exist (map
        larger).  Call sites that know the cluster size (the federation
        front tier, the CLI) fail fast here instead.
        """
        if n_servers != self.n_servers:
            raise ConfigurationError(
                f"shard map covers {self.n_servers} servers but the "
                f"cluster has {n_servers}; rebuild the map for the "
                f"cluster it places onto"
            )

    def shards_on(self, server: int) -> Tuple[int, ...]:
        """Shards hosted by a server."""
        if not 0 <= server < self.n_servers:
            raise ConfigurationError(
                f"server {server} outside [0, {self.n_servers})"
            )
        return tuple(
            shard for shard in range(self.n_shards)
            if server in self._replicas[shard]
        )


class ShardedPlacement:
    """A placement hook resolving fanouts through a shard map.

    A query with fanout ``k`` touches ``k`` distinct shards — uniformly
    or Zipf-distributed by popularity — and each task goes to one
    replica of its shard.  When multiple shards resolve to the same
    server, further shards are drawn so the query still occupies ``k``
    distinct servers (the paper's model has one task per server).

    Replica selection (`select`):

    * ``"random"`` — uniform among the shard's free replicas;
    * ``"least-loaded"`` — the free replica with the shortest queue
      (needs queue depths; the simulator provides them because this
      object sets ``needs_queue_depths``).  This is the
      replica-selection idea of the outlier-alleviation literature the
      paper surveys (§II.B, e.g. C3), composable under any queuing
      policy.

    Use as ``ClusterConfig(placement=ShardedPlacement(shard_map))``.
    """

    def __init__(self, shard_map: ShardMap,
                 popularity_alpha: Optional[float] = None,
                 select: str = "random") -> None:
        self.shard_map = shard_map
        if popularity_alpha is not None and popularity_alpha <= 0:
            raise ConfigurationError(
                f"popularity_alpha must be positive, got {popularity_alpha}"
            )
        if select not in ("random", "least-loaded"):
            raise ConfigurationError(
                f"select must be 'random' or 'least-loaded', got {select!r}"
            )
        self.select = select
        #: Protocol flag: the cluster simulator passes per-server queue
        #: depths as a third argument when this is True.
        self.needs_queue_depths = select == "least-loaded"
        self._probs: Optional[np.ndarray] = None
        if popularity_alpha is not None:
            weights = np.arange(1, shard_map.n_shards + 1,
                                dtype=float) ** -popularity_alpha
            self._probs = weights / weights.sum()

    def server_load_profile(self, samples: int,
                            rng: np.random.Generator) -> Dict[int, float]:
        """Expected fraction of single-shard lookups hitting each server
        (diagnostic for skew)."""
        counts: Dict[int, int] = {}
        shards = self._draw_shards(rng, samples)
        for shard in shards:
            replicas = self.shard_map.replicas(int(shard))
            server = replicas[int(rng.integers(len(replicas)))]
            counts[server] = counts.get(server, 0) + 1
        return {server: count / samples for server, count in counts.items()}

    def _draw_shards(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self._probs is None:
            return rng.integers(0, self.shard_map.n_shards, size=size)
        return rng.choice(self.shard_map.n_shards, size=size, p=self._probs)

    def __call__(self, spec: QuerySpec, rng: np.random.Generator,
                 queue_depths: Optional[Tuple[int, ...]] = None
                 ) -> Tuple[int, ...]:
        k = spec.fanout
        if k > self.shard_map.n_servers:
            raise ConfigurationError(
                f"fanout {k} exceeds {self.shard_map.n_servers} servers"
            )
        if self.select == "least-loaded" and queue_depths is None:
            raise ConfigurationError(
                "least-loaded selection needs queue depths; drive this "
                "placement through the cluster simulator"
            )
        chosen: List[int] = []
        seen = set()
        # Draw shards until k distinct servers are covered; cap the
        # attempts to stay robust under extreme popularity skew.
        attempts = 0
        limit = 50 * k + 100
        while len(chosen) < k:
            attempts += 1
            if attempts > limit:
                # Fall back to uniform servers for the remainder.
                for server in rng.permutation(self.shard_map.n_servers):
                    if int(server) not in seen:
                        seen.add(int(server))
                        chosen.append(int(server))
                        if len(chosen) == k:
                            break
                break
            shard = int(self._draw_shards(rng, 1)[0])
            replicas = self.shard_map.replicas(shard)
            # Prefer an unused replica (replication gives the scheduler
            # freedom); skip the shard if all replicas are taken.
            free = [s for s in replicas if s not in seen]
            if not free:
                continue
            if self.select == "least-loaded" and len(free) > 1:
                depth_of = queue_depths  # local alias
                best = min(depth_of[s] for s in free)
                candidates = [s for s in free if depth_of[s] == best]
                server = candidates[int(rng.integers(len(candidates)))]
            else:
                server = free[int(rng.integers(len(free)))]
            seen.add(server)
            chosen.append(server)
        return tuple(chosen)
