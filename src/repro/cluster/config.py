"""Simulation configuration."""

from __future__ import annotations

from dataclasses import KW_ONLY, dataclass, fields, replace
from typing import Callable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.admission import AdmissionController
from repro.core.deadline import DeadlineEstimator
from repro.core.policies import Policy, get_policy
from repro.distributions import Distribution
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.obs.recorder import TraceRecorder
from repro.overload.policy import OverloadPolicy
from repro.replicas.policy import ReplicaPolicy
from repro.types import QuerySpec
from repro.workloads.generator import Workload

#: Custom placement hook: (spec, rng) -> server ids (len == fanout).
PlacementFn = Callable[[QuerySpec, np.random.Generator], Tuple[int, ...]]


def evolve_config(config, **changes):
    """Validated ``dataclasses.replace`` for frozen config dataclasses.

    The single implementation behind the builder convention shared by
    :class:`ClusterConfig` and
    :class:`repro.federation.FederationConfig` (see docs/api.md,
    "Config builders"): every ``with_*`` helper is a thin wrapper over
    ``evolve``, and ``evolve`` is this function — unknown field names
    raise :class:`ConfigurationError` instead of ``TypeError``, and the
    dataclass's ``__post_init__`` re-validates the copy as usual.
    """
    known = {f.name for f in fields(config) if f.name != "_"}
    unknown = set(changes) - known
    if unknown:
        raise ConfigurationError(
            f"unknown config field(s): {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    return replace(config, **changes)


@dataclass(frozen=True)
class ServicePerturbation:
    """A time-windowed service slowdown/speedup (failure injection).

    While the simulation clock is in ``[start_ms, end_ms)``, service
    times drawn by the listed servers are multiplied by ``factor``.
    Models the paper's §III.B.2 concerns — "skewed workloads, uneven
    resource allocation and resource availability changes" — and drives
    the server-slowdown ablation.
    """

    server_ids: Tuple[int, ...]
    start_ms: float
    end_ms: float
    factor: float

    def __post_init__(self) -> None:
        if not self.server_ids:
            raise ConfigurationError("perturbation needs at least one server")
        if not 0 <= self.start_ms < self.end_ms:
            raise ConfigurationError(
                f"need 0 <= start < end, got [{self.start_ms}, {self.end_ms})"
            )
        if self.factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {self.factor}")

    def applies(self, server_id: int, now: float) -> bool:
        return (self.start_ms <= now < self.end_ms
                and server_id in self.server_ids)


@dataclass(frozen=True)
class ClusterConfig:
    """Everything :func:`repro.cluster.simulation.simulate` needs.

    Exactly one of ``workload`` or ``specs`` must be provided: either
    queries are generated from a workload model, or a pre-materialized
    spec list (trace replay — the mode that makes policy comparisons
    perfectly paired) is replayed.

    All optional fields are **keyword-only** (public-API contract; see
    ``docs/api.md``): the positional form ``ClusterConfig(100, "fifo",
    workload)`` was ambiguous and is no longer accepted.  Prefer the
    fluent helpers (:meth:`at_load`, :meth:`with_seed`,
    :meth:`with_recorder`, :meth:`with_faults`, :meth:`with_admission`,
    :meth:`with_overload`, :meth:`evolve`) over ``dataclasses.replace``
    — they re-run
    validation and keep call sites readable.
    """

    n_servers: int
    policy: Union[str, Policy]
    _: KW_ONLY
    workload: Optional[Workload] = None
    n_queries: int = 50_000
    specs: Optional[Sequence[QuerySpec]] = None
    seed: int = 0
    #: Leading fraction of queries excluded from statistics.
    warmup_fraction: float = 0.1
    admission: Optional[AdmissionController] = None
    #: Per-server *actual* service-time distributions; defaults to the
    #: workload's service time on every server (homogeneous).
    server_cdfs: Optional[Mapping[int, Distribution]] = None
    #: Deadline estimator override — pass one to model online updating,
    #: shared/inaccurate CDFs, or heterogeneity-aware estimation.
    estimator: Optional[DeadlineEstimator] = None
    #: Custom task placement (e.g. the SaS use-case rules).
    placement: Optional[PlacementFn] = None
    #: Failure injection: time-windowed service-time perturbations.
    perturbations: Tuple[ServicePerturbation, ...] = ()
    #: When set, sample (time, queued tasks, busy servers) every this
    #: many ms into ``SimulationResult.timeline`` (transient analysis).
    timeline_interval_ms: Optional[float] = None
    #: Observability: a :class:`repro.obs.TraceRecorder` to receive
    #: task-lifecycle events (and, when its ``sample_interval_ms`` is
    #: set, per-server time series).  ``None`` or a disabled recorder
    #: (e.g. :class:`repro.obs.NullRecorder`) keeps the hot path free
    #: of instrumentation.
    recorder: Optional[TraceRecorder] = None
    #: Fault injection: crash/recovery schedules, straggler episodes,
    #: and mitigations (retry/requeue, hedged requests).  ``None`` or an
    #: inactive plan keeps the optimized no-fault hot path; an active
    #: plan routes the run through the fault-aware event loop
    #: (:mod:`repro.cluster.faultsim`).
    faults: Optional[FaultPlan] = None
    #: Overload protection: adaptive admission, per-server circuit
    #: breakers, partial-fanout degradation, and CDF drift re-bootstrap
    #: (see :mod:`repro.overload`).  An active policy routes the run
    #: through the fault-aware event loop, with or without a fault plan.
    overload: Optional[OverloadPolicy] = None
    #: Adaptive redundancy & replica selection: scored requeue/hedge
    #: placement (optionally scored fanout), hedge suppression under
    #: pressure, and online AIMD hedge-delay control against a
    #: duplicate-load budget (see :mod:`repro.replicas`).  An active
    #: policy routes the run through the fault-aware event loop.
    replicas: Optional[ReplicaPolicy] = None

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ConfigurationError(f"need >= 1 server, got {self.n_servers}")
        if (self.workload is None) == (self.specs is None):
            raise ConfigurationError("provide exactly one of workload or specs")
        if self.workload is not None and self.n_queries < 1:
            raise ConfigurationError(f"n_queries must be >= 1, got {self.n_queries}")
        if not 0 <= self.warmup_fraction < 1:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.timeline_interval_ms is not None and self.timeline_interval_ms <= 0:
            raise ConfigurationError(
                f"timeline_interval_ms must be positive, "
                f"got {self.timeline_interval_ms}"
            )
        if (self.overload is not None and self.overload.active
                and self.admission is not None):
            raise ConfigurationError(
                "admission and overload are mutually exclusive: with an "
                "OverloadPolicy, admission control lives on "
                "OverloadPolicy.admission"
            )
        if (self.replicas is not None and self.replicas.needs_hedging
                and (self.faults is None or self.faults.hedge is None)):
            raise ConfigurationError(
                "hedge suppression / adaptive hedge delay need a "
                "FaultPlan with a HedgePolicy (ClusterConfig.faults)"
            )

    def resolve_policy(self) -> Policy:
        if isinstance(self.policy, Policy):
            return self.policy
        return get_policy(self.policy)

    def resolve_server_cdfs(self) -> Mapping[int, Distribution]:
        if self.server_cdfs is not None:
            if set(self.server_cdfs) != set(range(self.n_servers)):
                raise ConfigurationError(
                    "server_cdfs must cover exactly servers 0..N-1"
                )
            return self.server_cdfs
        if self.workload is None:
            raise ConfigurationError(
                "spec-driven simulations need explicit server_cdfs"
            )
        shared = self.workload.service_time
        return {server: shared for server in range(self.n_servers)}

    def at_load(self, load: float) -> "ClusterConfig":
        """A copy with the workload re-rated to the given offered load."""
        if self.workload is None:
            raise ConfigurationError("at_load requires a workload")
        return replace(self, workload=self.workload.at_load(load, self.n_servers))

    # ------------------------------------------------------------------
    # Builder convention (docs/api.md, "Config builders"): ``evolve``
    # owns validation — unknown-field rejection plus the usual
    # ``__post_init__`` re-check — and every ``with_*`` helper is a
    # thin, readable wrapper over it.
    # ------------------------------------------------------------------
    def with_seed(self, seed: int) -> "ClusterConfig":
        """A copy with a different root seed.

        The parallel experiment runner materializes one config per
        (probe, seed) task with this method *before* fan-out, so a
        worker reproduces exactly the run the serial loop would have
        executed — ``simulate`` derives all randomness from
        ``np.random.default_rng(seed).spawn(...)`` on this field.
        """
        return self.evolve(seed=seed)

    def with_recorder(self, recorder: Optional[TraceRecorder]
                      ) -> "ClusterConfig":
        """A copy instrumented with the given trace recorder."""
        return self.evolve(recorder=recorder)

    def with_faults(self, faults: Optional[FaultPlan]) -> "ClusterConfig":
        """A copy running under the given fault plan (None removes it)."""
        return self.evolve(faults=faults)

    def with_admission(self, admission: Optional[AdmissionController]
                       ) -> "ClusterConfig":
        """A copy with the given admission controller installed."""
        return self.evolve(admission=admission)

    def with_overload(self, overload: Optional[OverloadPolicy]
                      ) -> "ClusterConfig":
        """A copy running under the given overload policy (None removes
        it)."""
        return self.evolve(overload=overload)

    def with_replicas(self, replicas: Optional[ReplicaPolicy]
                      ) -> "ClusterConfig":
        """A copy running under the given replica policy (None removes
        it)."""
        return self.evolve(replicas=replicas)

    def evolve(self, **changes) -> "ClusterConfig":
        """A validated copy with arbitrary fields replaced.

        The supported spelling of ``dataclasses.replace`` for configs
        (see :func:`evolve_config`): unknown field names raise
        :class:`ConfigurationError` instead of ``TypeError``, and
        ``__post_init__`` re-validates the result as usual.
        """
        return evolve_config(self, **changes)
