"""The optimized event-calendar simulation of the TailGuard model.

Semantics are identical to composing :class:`repro.core.handler.QueryHandler`
with :class:`repro.core.server.TaskServer` on the DES kernel (an
integration test asserts equal latencies on a shared trace), but the
implementation is a flat two-stream merge — sorted arrivals against a
completion heap — which runs large parameter sweeps in minutes.

Model recap (paper Fig. 2):

* a query arrives, passes admission control, fans out ``k_f`` tasks to
  distinct servers, all stamped with one queuing deadline ``t_D``
  (Eq. 6);
* each server serves one task at a time from a policy-ordered queue;
* deadline misses are observed at dequeue time (central queuing);
* a query completes when its slowest task does.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.results import SimulationResult, Timeline
from repro.core.deadline import DeadlineEstimator
from repro.core.policies import FIFOPolicy, TEDFPolicy, TFEDFPolicy
from repro.distributions import SampleStream
from repro.errors import ConfigurationError
from repro.obs.events import (
    CDF_UPDATE,
    DEADLINE_MISS,
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_REJECTED,
    SERVER_BUSY,
    SERVER_IDLE,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
)
from repro.types import ServiceClass
from repro.workloads.generator import generate_queries, generate_query_arrays


def _prepare_specs(config: ClusterConfig, spec_rng: np.random.Generator):
    """Materialize the spec list and its per-query arrays.

    Shared by the no-fault hot loop below and the fault-aware loop in
    :mod:`repro.cluster.faultsim` so both paths see byte-identical
    traces for a given config.
    """
    if config.specs is not None:
        specs = sorted(config.specs, key=lambda s: s.arrival_time)
    else:
        specs = generate_queries(config.workload, config.n_queries, spec_rng)
    if not specs:
        raise ConfigurationError("no queries to simulate")

    n = config.n_servers
    m = len(specs)
    classes: List[ServiceClass] = []
    class_of: Dict[str, int] = {}
    class_index = np.empty(m, dtype=np.int32)
    fanout = np.empty(m, dtype=np.int32)
    arrival = np.empty(m, dtype=np.float64)
    for i, spec in enumerate(specs):
        cls = spec.service_class
        idx = class_of.get(cls.name)
        if idx is None:
            idx = len(classes)
            class_of[cls.name] = idx
            classes.append(cls)
        elif classes[idx] != cls:
            raise ConfigurationError(f"two different classes named {cls.name!r}")
        class_index[i] = idx
        fanout[i] = spec.fanout
        arrival[i] = spec.arrival_time
        if spec.fanout > n:
            raise ConfigurationError(
                f"query {spec.query_id}: fanout {spec.fanout} > {n} servers"
            )
    return specs, classes, class_index, fanout, arrival


def _prepare_query_arrays(config: ClusterConfig,
                          spec_rng: np.random.Generator):
    """Array-form twin of :func:`_prepare_specs` for generated workloads.

    Consumes the exact same RNG variates as the spec path (``generate_queries``
    is itself built on :func:`generate_query_arrays`) but never
    materializes :class:`~repro.types.QuerySpec` objects — the dominant
    setup cost of large generated runs.  The class table is deduplicated
    in first-appearance order, matching the spec loop, so ``class_index``
    values and the ``classes`` tuple come out bit-identical.
    """
    times, fanouts, class_indices = generate_query_arrays(
        config.workload, config.n_queries, spec_rng)
    m = times.shape[0]
    if m == 0:
        raise ConfigurationError("no queries to simulate")
    n = config.n_servers
    if int(fanouts.max()) > n:
        bad = int(np.argmax(fanouts > n))
        raise ConfigurationError(
            f"query {bad}: fanout {int(fanouts[bad])} > {n} servers"
        )
    mix_classes = config.workload.class_mix.classes
    uniq, first_pos, inverse = np.unique(
        class_indices, return_index=True, return_inverse=True)
    order = np.argsort(first_pos)
    remap = np.empty(uniq.shape[0], dtype=np.int32)
    remap[order] = np.arange(uniq.shape[0], dtype=np.int32)
    class_index = remap[inverse]
    classes = [mix_classes[int(uniq[i])] for i in order]
    return classes, class_index, fanouts.astype(np.int32), times


def _budget_array(estimator: DeadlineEstimator, classes,
                  class_index: np.ndarray, fanout: np.ndarray,
                  n: int, servers_list=None) -> List[float]:
    """Hoisted deadline budgets for the static homogeneous fast path.

    Budgets depend only on the (class, fanout) pair, so evaluate the
    whole table once — one ``budget_table()`` call per class over the
    distinct fanouts, gathered into a per-query array.  Stamping ``t_D``
    then costs an indexed add instead of an estimator call per query.
    ``servers_list`` holds each query's pre-placed servers (or ``None``
    when the simulator places it); omit it when every query is free.
    Returns ``[]`` when no query is eligible (all pre-placed).
    """
    m = len(class_index)
    if servers_list is None:
        free = np.ones(m, dtype=bool)
    else:
        free = np.fromiter((servers is None for servers in servers_list),
                           dtype=bool, count=m)
    if not free.any():
        return []
    codes = class_index.astype(np.int64) * (np.int64(n) + 1) + fanout
    uniq_codes, inverse = np.unique(codes[free], return_inverse=True)
    fanouts_by_class: Dict[int, List[int]] = {}
    for code in uniq_codes:
        ci, k = divmod(int(code), n + 1)
        fanouts_by_class.setdefault(ci, []).append(k)
    budget_by_code: Dict[int, float] = {}
    for ci, ks in fanouts_by_class.items():
        for k, value in estimator.budget_table(classes[ci], ks).items():
            budget_by_code[ci * (n + 1) + k] = value
    table = np.array([budget_by_code[int(code)] for code in uniq_codes])
    budgets = np.full(m, np.nan)
    budgets[free] = table[inverse]
    return budgets.tolist()


def _server_streams(config: ClusterConfig, server_cdfs,
                    service_rng: np.random.Generator) -> List[SampleStream]:
    """One block sampler per distinct service-time distribution object."""
    streams: Dict[int, SampleStream] = {}
    server_stream: List[SampleStream] = []
    for sid in range(config.n_servers):
        dist = server_cdfs[sid]
        stream = streams.get(id(dist))
        if stream is None:
            stream = SampleStream(dist, service_rng.spawn(1)[0])
            streams[id(dist)] = stream
        server_stream.append(stream)
    return server_stream


def _fast_loop_static(is_fifo: bool, n: int, m: int, arrival_l, fanout_l,
                      query_budget, stream0, placement_rng):
    """The innermost specialization of :func:`_fast_loop`.

    Preconditions (checked by the caller): precomputed budget array, no
    admission control, no pre-placed servers, one shared service-time
    stream, no perturbations, no timeline sampling, and a FIFO or
    TF-EDFQ policy.  Those preconditions let every per-event guard
    disappear, the completion calendar shrink to ``(finish, sid, qidx)``
    triples, and TF-EDFQ queue entries shrink to
    ``(deadline, seq, qidx)`` — the queue key *is* the stamped deadline.
    Event order, RNG consumption, and all arithmetic are exactly the
    generic loop's.
    """
    heappush, heappop = heapq.heappush, heapq.heappop

    queues = ([deque() for _ in range(n)] if is_fifo
              else [[] for _ in range(n)])
    busy = [False] * n
    all_servers = tuple(range(n))
    pr_integers = placement_rng.integers
    pr_choice = placement_rng.choice
    drain = stream0.drain_block
    sbuf: List[float] = []
    sidx = 0
    slen = 0

    nan = float("nan")
    heap: List[Tuple[float, int, int]] = []
    latency_l = [nan] * m
    remaining = list(fanout_l)
    seq = 0
    qi = 0
    now = 0.0
    busy_total = 0.0
    tasks_total = 0
    tasks_missed = 0

    while qi < m:
        next_arrival = arrival_l[qi]
        # Run down every completion at or before the next arrival.
        while heap:
            head = heap[0]
            now = head[0]
            if now > next_arrival:
                break
            heappop(heap)
            sid = head[1]
            qidx = head[2]
            left = remaining[qidx] - 1
            remaining[qidx] = left
            if not left:
                latency_l[qidx] = now - arrival_l[qidx]
            queue = queues[sid]
            if queue:
                if is_fifo:
                    task_qidx, task_deadline = queue.popleft()
                else:
                    entry = heappop(queue)
                    task_deadline = entry[0]
                    task_qidx = entry[2]
                tasks_total += 1
                if now > task_deadline:
                    tasks_missed += 1
                if sidx == slen:
                    sbuf = drain()
                    slen = len(sbuf)
                    sidx = 0
                duration = sbuf[sidx]
                sidx += 1
                busy_total += duration
                heappush(heap, (now + duration, sid, task_qidx))
            else:
                busy[sid] = False

        # ----- query arrival -------------------------------------------
        now = next_arrival
        qidx = qi
        qi += 1
        k = fanout_l[qidx]
        deadline = now + query_budget[qidx]
        if k == 1:
            sid = int(pr_integers(n))
            if busy[sid]:
                if is_fifo:
                    queues[sid].append((qidx, deadline))
                else:
                    heappush(queues[sid], (deadline, seq, qidx))
                    seq += 1
            else:
                busy[sid] = True
                tasks_total += 1
                if now > deadline:
                    tasks_missed += 1
                if sidx == slen:
                    sbuf = drain()
                    slen = len(sbuf)
                    sidx = 0
                duration = sbuf[sidx]
                sidx += 1
                busy_total += duration
                heappush(heap, (now + duration, sid, qidx))
            continue
        if k == n:
            servers = all_servers
        else:
            servers = pr_choice(n, size=k, replace=False).tolist()
        for sid in servers:
            if busy[sid]:
                if is_fifo:
                    queues[sid].append((qidx, deadline))
                else:
                    heappush(queues[sid], (deadline, seq, qidx))
                    seq += 1
            else:
                busy[sid] = True
                tasks_total += 1
                if now > deadline:
                    tasks_missed += 1
                if sidx == slen:
                    sbuf = drain()
                    slen = len(sbuf)
                    sidx = 0
                duration = sbuf[sidx]
                sidx += 1
                busy_total += duration
                heappush(heap, (now + duration, sid, qidx))

    # Arrivals exhausted: drain the calendar.
    while heap:
        now, sid, qidx = heappop(heap)
        left = remaining[qidx] - 1
        remaining[qidx] = left
        if not left:
            latency_l[qidx] = now - arrival_l[qidx]
        queue = queues[sid]
        if queue:
            if is_fifo:
                task_qidx, task_deadline = queue.popleft()
            else:
                entry = heappop(queue)
                task_deadline = entry[0]
                task_qidx = entry[2]
            tasks_total += 1
            if now > task_deadline:
                tasks_missed += 1
            if sidx == slen:
                sbuf = drain()
                slen = len(sbuf)
                sidx = 0
            duration = sbuf[sidx]
            sidx += 1
            busy_total += duration
            heappush(heap, (now + duration, sid, task_qidx))
        else:
            busy[sid] = False

    latency = np.asarray(latency_l, dtype=np.float64)
    rejected = np.zeros(m, dtype=bool)
    return (latency, rejected, busy_total, tasks_total, tasks_missed, now,
            [], [], [])


def _fast_loop(policy, n: int, m: int, classes, class_index, fanout, arrival,
               servers_list, query_budget, estimator, online: bool,
               admission, server_stream, perturbations, perturbed_servers,
               placement_rng, sample_interval):
    """The untraced two-stream merge, specialized for inlined queues.

    Semantically identical to the generic loop in :func:`simulate` (the
    golden-master corpus pins this bit-for-bit) but with the per-event
    overhead stripped: plain Python lists instead of numpy scalar
    indexing, the policy queue inlined as a raw ``deque`` (FIFO) or a
    raw ``(key, seq, qidx, deadline)`` heap (the EDF family), and the
    service-time sampler's block buffer indexed directly instead of one
    ``SampleStream.next()`` call per task.  RNG call order — placement
    draws interleaved with block refills — is exactly the generic
    loop's, which is what keeps seeded traces identical.
    """
    heappush, heappop = heapq.heappush, heapq.heappop
    infinity = float("inf")
    nan = float("nan")

    is_fifo = type(policy) is FIFOPolicy
    key_is_deadline = type(policy) is TFEDFPolicy
    arrival_l = arrival.tolist()
    fanout_l = fanout.tolist()
    class_index_l = class_index.tolist()
    slo_by_class = [cls.slo_ms for cls in classes]
    est_homogeneous = estimator.homogeneous
    est_deadline = estimator.deadline
    est_record = estimator.record
    admit = admission.admit if admission is not None else None
    record_task = admission.record_task if admission is not None else None
    use_budget = query_budget is not None
    has_perturb = bool(perturbed_servers)

    # One block buffer indexed inline when every server shares a stream
    # (the homogeneous common case); bound ``next`` methods otherwise.
    single_stream = len({id(stream) for stream in server_stream}) == 1
    stream0 = server_stream[0]
    nexts = [stream.next for stream in server_stream]
    sbuf: List[float] = []
    sidx = 0
    slen = 0

    # The hottest shape of all — static homogeneous budgets, no
    # admission, no sampling, no perturbations, simulator placement —
    # gets a further-specialized loop with every per-event guard
    # compiled out.  FIFO and TF-EDFQ only: T-EDFQ's queue key differs
    # from the stamped deadline, which would widen the queue entries.
    if (use_budget and admit is None and servers_list is None
            and single_stream and not has_perturb
            and sample_interval is None and (is_fifo or key_is_deadline)):
        return _fast_loop_static(
            is_fifo, n, m, arrival_l, fanout_l, query_budget, stream0,
            placement_rng)

    queues = ([deque() for _ in range(n)] if is_fifo
              else [[] for _ in range(n)])
    busy = [False] * n
    all_servers = tuple(range(n))
    pr_integers = placement_rng.integers
    pr_choice = placement_rng.choice

    heap: List[Tuple[float, int, int, float]] = []
    latency_l = [nan] * m
    remaining = list(fanout_l)
    rejected_idx: List[int] = []
    seq = 0
    qi = 0
    now = 0.0
    busy_total = 0.0
    tasks_total = 0
    tasks_missed = 0

    sampling = sample_interval is not None
    next_sample = sample_interval if sampling else infinity
    sample_times: List[float] = []
    sample_queued: List[int] = []
    sample_busy: List[int] = []
    queued_tasks = 0
    busy_servers = 0

    while qi < m or heap:
        next_arrival = arrival_l[qi] if qi < m else infinity
        if sampling:
            next_event = heap[0][0] if heap else infinity
            if next_arrival < next_event:
                next_event = next_arrival
            while next_sample <= next_event:
                sample_times.append(next_sample)
                sample_queued.append(queued_tasks)
                sample_busy.append(busy_servers)
                next_sample += sample_interval
        if heap and heap[0][0] <= next_arrival:
            # ----- task completion -------------------------------------
            now, sid, qidx, duration = heappop(heap)
            if online:
                est_record(sid, duration)
            left = remaining[qidx] - 1
            remaining[qidx] = left
            if not left:
                latency_l[qidx] = now - arrival_l[qidx]
            queue = queues[sid]
            if queue:
                if is_fifo:
                    task_qidx, task_deadline = queue.popleft()
                else:
                    entry = heappop(queue)
                    task_qidx = entry[2]
                    task_deadline = entry[3]
                tasks_total += 1
                if now > task_deadline:
                    tasks_missed += 1
                    if record_task is not None:
                        record_task(True, now)
                elif record_task is not None:
                    record_task(False, now)
                if sampling:
                    queued_tasks -= 1
                if single_stream:
                    if sidx == slen:
                        sbuf = stream0.drain_block()
                        slen = len(sbuf)
                        sidx = 0
                    next_duration = sbuf[sidx]
                    sidx += 1
                else:
                    next_duration = nexts[sid]()
                if has_perturb and sid in perturbed_servers:
                    for perturbation in perturbations:
                        if perturbation.applies(sid, now):
                            next_duration *= perturbation.factor
                busy_total += next_duration
                heappush(heap, (now + next_duration, sid, task_qidx,
                                next_duration))
            else:
                busy[sid] = False
                if sampling:
                    busy_servers -= 1
            continue

        # ----- query arrival -------------------------------------------
        now = next_arrival
        qidx = qi
        qi += 1
        if admit is not None and not admit(now):
            rejected_idx.append(qidx)
            continue

        k = fanout_l[qidx]
        pre = servers_list[qidx] if servers_list is not None else None
        if pre is not None:
            servers = pre
        elif k == n:
            servers = all_servers
        elif k == 1:
            servers = (int(pr_integers(n)),)
        else:
            # .tolist() yields the same ints as the generic loop's
            # per-element int() casts, without the genexpr frame.
            servers = pr_choice(n, size=k, replace=False).tolist()

        if use_budget and pre is None:
            deadline = now + query_budget[qidx]
        elif est_homogeneous:
            deadline = est_deadline(now, classes[class_index_l[qidx]],
                                    fanout=k)
        else:
            deadline = est_deadline(now, classes[class_index_l[qidx]],
                                    servers=servers)
        if not is_fifo:
            keyval = (deadline if key_is_deadline
                      else now + slo_by_class[class_index_l[qidx]])

        for sid in servers:
            if busy[sid]:
                if is_fifo:
                    queues[sid].append((qidx, deadline))
                else:
                    heappush(queues[sid], (keyval, seq, qidx, deadline))
                    seq += 1
                if sampling:
                    queued_tasks += 1
            else:
                busy[sid] = True
                tasks_total += 1
                if sampling:
                    busy_servers += 1
                if now > deadline:
                    tasks_missed += 1
                    if record_task is not None:
                        record_task(True, now)
                elif record_task is not None:
                    record_task(False, now)
                if single_stream:
                    if sidx == slen:
                        sbuf = stream0.drain_block()
                        slen = len(sbuf)
                        sidx = 0
                    duration = sbuf[sidx]
                    sidx += 1
                else:
                    duration = nexts[sid]()
                if has_perturb and sid in perturbed_servers:
                    for perturbation in perturbations:
                        if perturbation.applies(sid, now):
                            duration *= perturbation.factor
                busy_total += duration
                heappush(heap, (now + duration, sid, qidx, duration))

    latency = np.asarray(latency_l, dtype=np.float64)
    rejected = np.zeros(m, dtype=bool)
    if rejected_idx:
        rejected[rejected_idx] = True
    return (latency, rejected, busy_total, tasks_total, tasks_missed, now,
            sample_times, sample_queued, sample_busy)


def _finalize(config: ClusterConfig, policy, n: int, server_cdfs, classes,
              class_index, fanout, arrival, latency, rejected,
              busy_total: float, tasks_total: int, tasks_missed: int,
              now: float, sample_times, sample_queued, sample_busy,
              rec, tracing: bool) -> SimulationResult:
    """Shared wrap-up: warmup mask, timeline, load, result assembly."""
    m = len(class_index)
    warmup_count = int(m * config.warmup_fraction)
    measured = np.zeros(m, dtype=bool)
    measured[warmup_count:] = True

    timeline = None
    if config.timeline_interval_ms is not None:
        timeline = Timeline(
            time=np.asarray(sample_times),
            queued_tasks=np.asarray(sample_queued, dtype=np.int64),
            busy_servers=np.asarray(sample_busy, dtype=np.int64),
        )

    mean_service = float(
        np.mean([server_cdfs[sid].mean() for sid in range(n)])
    )
    if config.workload is not None:
        offered = config.workload.load(n)
    else:
        span = float(arrival.max() - arrival.min())
        offered = (
            float(fanout.sum()) * mean_service / (n * span) if span > 0 else 0.0
        )

    if tracing:
        rec.set_gauge("utilization",
                      busy_total / (n * now) if now > 0 else 0.0)
        rec.set_gauge("deadline_miss_ratio",
                      tasks_missed / tasks_total if tasks_total else 0.0)
        rec.set_gauge("duration_ms", now)

    return SimulationResult(
        policy_name=policy.name,
        n_servers=n,
        seed=config.seed,
        offered_load=offered,
        classes=tuple(classes),
        class_index=class_index,
        fanout=fanout,
        arrival=arrival,
        latency=latency,
        rejected=rejected,
        measured=measured,
        tasks_total=tasks_total,
        tasks_missed_deadline=tasks_missed,
        busy_time_total=busy_total,
        duration=now,
        mean_service_ms=mean_service,
        timeline=timeline,
        obs=rec if tracing else None,
    )


def simulate(config: ClusterConfig) -> SimulationResult:
    """Run one simulation and collect per-query statistics.

    Fault-free configs run the optimized two-stream merge below;
    configs with an active :class:`~repro.faults.FaultPlan`, an active
    :class:`~repro.overload.OverloadPolicy`, or an active
    :class:`~repro.replicas.ReplicaPolicy` route through the
    fault-aware event calendar in :mod:`repro.cluster.faultsim` (same
    semantics contract, plus crash/recovery, retries, hedging,
    overload protection, and adaptive redundancy).
    """
    if ((config.faults is not None and config.faults.active)
            or (config.overload is not None and config.overload.active)
            or (config.replicas is not None and config.replicas.active)):
        from repro.cluster.faultsim import simulate_with_faults

        return simulate_with_faults(config)

    policy = config.resolve_policy()
    root_rng = np.random.default_rng(config.seed)
    spec_rng, placement_rng, service_rng = root_rng.spawn(3)

    n = config.n_servers
    server_cdfs = config.resolve_server_cdfs()
    server_stream = _server_streams(config, server_cdfs, service_rng)

    estimator = config.estimator
    if estimator is None:
        estimator = DeadlineEstimator(dict(server_cdfs))

    rec = config.recorder
    tracing = rec is not None and rec.enabled
    admission = config.admission
    placement = config.placement

    # The specialized fast loop covers the common benchmarking shape:
    # untraced, default placement, and a policy whose queue the kernel
    # can inline (a deque for FIFO, a raw heap for the EDF family).
    # Everything else — tracing, custom placement, PRIQ/WRR or custom
    # policies — runs the generic loop below, unchanged.
    fast = (not tracing and placement is None
            and type(policy) in (FIFOPolicy, TEDFPolicy, TFEDFPolicy))

    specs = None
    servers_list: Optional[List] = None
    if fast and config.specs is None:
        classes, class_index, fanout, arrival = _prepare_query_arrays(
            config, spec_rng)
    else:
        specs, classes, class_index, fanout, arrival = _prepare_specs(
            config, spec_rng)
        servers_list = [spec.servers for spec in specs]
    m = len(class_index)

    perturbations = tuple(config.perturbations)
    perturbed_servers = (
        frozenset().union(*(p.server_ids for p in perturbations))
        if perturbations else frozenset()
    )

    online = estimator.online_enabled
    homogeneous_fast = estimator.homogeneous and not online and placement is None

    query_budget: List[float] = []
    if homogeneous_fast:
        query_budget = _budget_array(estimator, classes, class_index,
                                     fanout, n, servers_list)
    use_budget_array = bool(query_budget)

    if fast:
        (latency, rejected, busy_total, tasks_total, tasks_missed, now,
         sample_times, sample_queued, sample_busy) = _fast_loop(
            policy, n, m, classes, class_index, fanout, arrival,
            servers_list, query_budget if use_budget_array else None,
            estimator, online, admission, server_stream,
            perturbations, perturbed_servers, placement_rng,
            config.timeline_interval_ms)
        return _finalize(config, policy, n, server_cdfs, classes,
                         class_index, fanout, arrival, latency, rejected,
                         busy_total, tasks_total, tasks_missed, now,
                         sample_times, sample_queued, sample_busy,
                         rec, tracing)

    remaining = fanout.astype(np.int64).copy()
    latency = np.full(m, np.nan)
    rejected = np.zeros(m, dtype=bool)

    # ------------------------------------------------------------------
    # Server state.
    # ------------------------------------------------------------------
    queues = [policy.create_queue() for _ in range(n)]
    busy = [False] * n
    all_servers = tuple(range(n))

    heap: List[Tuple[float, int, int, float]] = []  # (finish, sid, qidx, duration)
    push, pop = heapq.heappush, heapq.heappop

    placement_wants_depths = bool(
        placement is not None and getattr(placement, "needs_queue_depths",
                                          False)
    )

    def perturbed_duration(sid: int, start: float, duration: float) -> float:
        for perturbation in perturbations:
            if perturbation.applies(sid, start):
                duration *= perturbation.factor
        return duration

    busy_total = 0.0
    tasks_total = 0
    tasks_missed = 0
    now = 0.0
    qi = 0
    infinity = float("inf")

    # Optional timeline sampling: state *between* events is constant, so
    # emit samples for every interval boundary the clock steps over.
    sample_interval = config.timeline_interval_ms
    next_sample = sample_interval if sample_interval is not None else infinity
    sample_times: List[float] = []
    sample_queued: List[int] = []
    sample_busy: List[int] = []
    queued_tasks = 0
    busy_servers = 0

    # ------------------------------------------------------------------
    # Observability.  ``tracing`` is a local bool, so a run without a
    # recorder pays one boolean check per instrumented site and nothing
    # else — no event objects, no per-server accounting.
    # ------------------------------------------------------------------
    obs_interval = rec.sample_interval_ms if tracing else None
    next_obs = obs_interval if obs_interval is not None else infinity
    if tracing:
        server_tasks = [0] * n       # dequeued tasks per server
        server_misses = [0] * n      # deadline misses per server
        server_busy_ms = [0.0] * n   # completed service time per server
        server_busy_since = [0.0] * n  # start of the in-flight task

    while qi < m or heap:
        next_arrival = arrival[qi] if qi < m else infinity
        if sample_interval is not None or obs_interval is not None:
            next_event = min(next_arrival, heap[0][0] if heap else infinity)
            if sample_interval is not None:
                while next_sample <= next_event:
                    sample_times.append(next_sample)
                    sample_queued.append(queued_tasks)
                    sample_busy.append(busy_servers)
                    next_sample += sample_interval
            if obs_interval is not None:
                while next_obs <= next_event:
                    t = next_obs
                    rec.sample_servers(
                        t,
                        [len(queue) for queue in queues],
                        [1 if flag else 0 for flag in busy],
                        [min(1.0, (server_busy_ms[sid]
                                   + (t - server_busy_since[sid]
                                      if busy[sid] else 0.0)) / t)
                         for sid in range(n)],
                        [server_misses[sid] / server_tasks[sid]
                         if server_tasks[sid] else 0.0 for sid in range(n)],
                    )
                    next_obs += obs_interval
        if heap and heap[0][0] <= next_arrival:
            # ----- task completion -------------------------------------
            finish, sid, qidx, duration = pop(heap)
            now = finish
            if online:
                estimator.record(sid, duration)
            if tracing:
                server_busy_ms[sid] += duration
                rec.emit(TASK_COMPLETE, now, server_id=sid, query_id=qidx,
                         class_name=classes[class_index[qidx]].name,
                         extra={"duration": duration})
                if online:
                    rec.emit(CDF_UPDATE, now, server_id=sid,
                             extra={"observation": duration})
            remaining[qidx] -= 1
            if remaining[qidx] == 0:
                latency[qidx] = now - arrival[qidx]
                if tracing:
                    rec.observe_latency(latency[qidx])
                    rec.inc("queries_completed")
                    rec.emit(QUERY_COMPLETE, now, query_id=qidx,
                             class_name=classes[class_index[qidx]].name,
                             fanout=int(fanout[qidx]),
                             extra={"latency": latency[qidx]})
            queue = queues[sid]
            if len(queue) > 0:
                task_qidx, task_deadline = queue.pop()
                queued_tasks -= 1
                tasks_total += 1
                missed = now > task_deadline
                if missed:
                    tasks_missed += 1
                if admission is not None:
                    admission.record_task(missed, now)
                if tracing:
                    server_tasks[sid] += 1
                    server_busy_since[sid] = now
                    rec.inc("tasks_dequeued")
                    rec.emit(TASK_DEQUEUE, now, server_id=sid,
                             query_id=task_qidx,
                             class_name=classes[class_index[task_qidx]].name,
                             fanout=int(fanout[task_qidx]),
                             deadline=task_deadline,
                             slack=task_deadline - now,
                             extra={"queue_len": len(queue)})
                    if missed:
                        server_misses[sid] += 1
                        rec.inc("deadline_misses")
                        rec.emit(DEADLINE_MISS, now, server_id=sid,
                                 query_id=task_qidx,
                                 deadline=task_deadline,
                                 slack=task_deadline - now)
                next_duration = server_stream[sid].next()
                if sid in perturbed_servers:
                    next_duration = perturbed_duration(sid, now, next_duration)
                busy_total += next_duration
                push(heap, (now + next_duration, sid, task_qidx, next_duration))
            else:
                busy[sid] = False
                busy_servers -= 1
                if tracing:
                    rec.emit(SERVER_IDLE, now, server_id=sid)
            continue

        # ----- query arrival -------------------------------------------
        now = next_arrival
        qidx = qi
        qi += 1
        if tracing:
            rec.inc("queries_arrived")
            rec.emit(QUERY_ARRIVE, now, query_id=qidx,
                     class_name=classes[class_index[qidx]].name,
                     fanout=int(fanout[qidx]))
        if admission is not None and not admission.admit(now):
            rejected[qidx] = True
            if tracing:
                rec.inc("queries_rejected")
                rec.emit(QUERY_REJECTED, now, query_id=qidx,
                         class_name=classes[class_index[qidx]].name,
                         fanout=int(fanout[qidx]),
                         extra={"miss_ratio": admission.miss_ratio()})
            continue

        spec = specs[qidx]
        k = int(fanout[qidx])
        cls = classes[class_index[qidx]]

        if spec.servers is not None:
            servers = spec.servers
        elif placement is not None:
            if placement_wants_depths:
                depths = tuple(
                    len(queues[sid]) + (1 if busy[sid] else 0)
                    for sid in range(n)
                )
                servers = placement(spec, placement_rng, depths)
            else:
                servers = placement(spec, placement_rng)
            if len(servers) != k:
                raise ConfigurationError(
                    f"placement returned {len(servers)} servers for fanout {k}"
                )
            for sid in servers:
                if not 0 <= sid < n:
                    raise ConfigurationError(
                        f"placement returned server {sid} outside "
                        f"[0, {n}) for query {qidx}; shard maps must "
                        f"cover exactly the cluster's servers"
                    )
        elif k == n:
            servers = all_servers
        elif k == 1:
            servers = (int(placement_rng.integers(n)),)
        else:
            servers = tuple(
                int(s) for s in placement_rng.choice(n, size=k, replace=False)
            )

        if use_budget_array and spec.servers is None:
            deadline = now + query_budget[qidx]
        elif estimator.homogeneous:
            deadline = estimator.deadline(now, cls, fanout=k)
        else:
            deadline = estimator.deadline(now, cls, servers=servers)

        key = policy.queue_key(now, cls, deadline)
        for sid in servers:
            if busy[sid]:
                if tracing:
                    depth = queues[sid].reorder_depth(key)
                    queues[sid].push((qidx, deadline), key)
                    queued_tasks += 1
                    rec.emit(TASK_ENQUEUE, now, server_id=sid, query_id=qidx,
                             class_name=cls.name, fanout=k, deadline=deadline,
                             slack=deadline - now,
                             extra={"queue_len": len(queues[sid]),
                                    "reorder_depth": depth})
                else:
                    queues[sid].push((qidx, deadline), key)
                    queued_tasks += 1
            else:
                busy[sid] = True
                busy_servers += 1
                tasks_total += 1
                missed = now > deadline
                if missed:
                    tasks_missed += 1
                    if admission is not None:
                        admission.record_task(True, now)
                elif admission is not None:
                    admission.record_task(False, now)
                if tracing:
                    server_tasks[sid] += 1
                    server_busy_since[sid] = now
                    rec.inc("tasks_dequeued")
                    rec.emit(SERVER_BUSY, now, server_id=sid)
                    rec.emit(TASK_DEQUEUE, now, server_id=sid, query_id=qidx,
                             class_name=cls.name, fanout=k, deadline=deadline,
                             slack=deadline - now, extra={"queue_len": 0})
                    if missed:
                        server_misses[sid] += 1
                        rec.inc("deadline_misses")
                        rec.emit(DEADLINE_MISS, now, server_id=sid,
                                 query_id=qidx, deadline=deadline,
                                 slack=deadline - now)
                duration = server_stream[sid].next()
                if sid in perturbed_servers:
                    duration = perturbed_duration(sid, now, duration)
                busy_total += duration
                push(heap, (now + duration, sid, qidx, duration))

    return _finalize(config, policy, n, server_cdfs, classes, class_index,
                     fanout, arrival, latency, rejected, busy_total,
                     tasks_total, tasks_missed, now, sample_times,
                     sample_queued, sample_busy, rec, tracing)
