"""Simulation outcome containers and SLO attainment checks."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.percentile import exact_percentile
from repro.obs.recorder import TraceRecorder
from repro.types import ServiceClass

#: A query *type* is a (service class name, fanout) pair (§IV.B).
TypeKey = Tuple[str, int]

#: Sentinel for :meth:`SimulationResult.merge`'s ``obs`` parameter:
#: "build a merged recorder from the constituents' recorders".
_AUTO_OBS = object()


def merge_obs_home(parent: Optional[TraceRecorder],
                   result: "SimulationResult") -> "SimulationResult":
    """Fold a result's recorder into ``parent`` and re-bind the result.

    The observability round-trip used by the parallel experiment
    runner: a worker-side :class:`~repro.obs.recorder.TraceRecorder`
    travels home inside its :class:`SimulationResult`, is merged into
    the parent-side recorder object (event re-sequencing, counter
    addition, bucket-wise histogram merge — see
    :meth:`TraceRecorder.merge_from`), and the result is re-bound to
    the parent so callers holding the shared recorder see
    serial-equivalent aggregates.  Public so hierarchical composers
    (:mod:`repro.federation`) reuse the same semantics.

    No-op when ``parent`` is ``None``/disabled, the result is untraced,
    or the result already points at ``parent``.
    """
    if (parent is None or not getattr(parent, "enabled", False)
            or result.obs is None or result.obs is parent):
        return result
    parent.merge_from(result.obs)
    return result.with_obs(parent)


@dataclass
class Timeline:
    """Sampled system state over simulation time.

    Enabled via ``ClusterConfig.timeline_interval_ms``; one row per
    sample instant, state as it was *just before* that instant.
    """

    time: np.ndarray
    queued_tasks: np.ndarray
    busy_servers: np.ndarray

    def __len__(self) -> int:
        return int(self.time.size)

    def peak_queue(self) -> int:
        return int(self.queued_tasks.max()) if len(self) else 0

    def mean_busy(self) -> float:
        return float(self.busy_servers.mean()) if len(self) else 0.0

    def between(self, start_ms: float, end_ms: float) -> "Timeline":
        mask = (self.time >= start_ms) & (self.time < end_ms)
        return Timeline(self.time[mask], self.queued_tasks[mask],
                        self.busy_servers[mask])


@dataclass
class SimulationResult:
    """Everything measured by one simulation run.

    Per-query arrays are aligned by query index; ``measured`` masks out
    the warm-up prefix.  Rejected queries (admission control) have
    ``latency`` = NaN and ``rejected`` = True.
    """

    policy_name: str
    n_servers: int
    seed: int
    offered_load: float
    classes: Tuple[ServiceClass, ...]
    class_index: np.ndarray
    fanout: np.ndarray
    arrival: np.ndarray
    latency: np.ndarray
    rejected: np.ndarray
    measured: np.ndarray
    tasks_total: int
    tasks_missed_deadline: int
    busy_time_total: float
    duration: float
    mean_service_ms: float
    timeline: Optional[Timeline] = None
    #: The trace recorder this run was instrumented with (None when the
    #: simulation ran untraced).  Carries the lifecycle event stream,
    #: streaming counters/histogram, and — when sampling was on — the
    #: per-server :class:`repro.obs.ServerSeries`.
    obs: Optional[TraceRecorder] = None
    #: Fault injection outcome (all zeros / None for fault-free runs).
    #: ``failed`` marks queries that lost a task slot for good (retries
    #: exhausted or no surviving server); their ``latency`` stays NaN.
    failed: Optional[np.ndarray] = None
    tasks_failed: int = 0
    tasks_retried: int = 0
    tasks_hedged: int = 0
    tasks_cancelled: int = 0
    server_failures: int = 0
    #: Overload protection outcome (see :mod:`repro.overload`; all
    #: zeros / None without an overload policy).  ``coverage`` is the
    #: per-query served fraction of the requested fanout (NaN for
    #: rejected queries); ``degraded`` marks queries served partially.
    coverage: Optional[np.ndarray] = None
    degraded: Optional[np.ndarray] = None
    degraded_queries: int = 0
    shed_tasks: int = 0
    breaker_trips: int = 0
    cdf_rebootstraps: int = 0
    #: The run's :class:`repro.overload.OverloadController` (None
    #: without an overload policy) — exposes the admit-probability
    #: trace and breaker states for tests and diagnostics.
    overload: Optional[object] = None
    #: Adaptive redundancy outcome (see :mod:`repro.replicas`; zero /
    #: None without a replica policy).  ``hedges_suppressed`` counts
    #: hedge timers that fired but were withheld by the budget,
    #: pressure, or score gate.
    hedges_suppressed: int = 0
    #: The run's :class:`repro.replicas.ReplicaController` (None
    #: without a replica policy) — exposes the hedge-delay trace,
    #: per-gate suppression counts, and win-ratio accounting.
    replicas: Optional[object] = None

    def with_obs(self, recorder: Optional[TraceRecorder]) -> "SimulationResult":
        """A copy bound to a different recorder.

        The parallel runner merges a worker-side recorder into the
        parent-side one and re-binds the result to the parent, so
        callers holding the shared recorder see serial-equivalent
        aggregates.
        """
        return replace(self, obs=recorder)

    @classmethod
    def merge(cls, results: Iterable["SimulationResult"], *,
              order: Optional[Sequence[int]] = None,
              obs: object = _AUTO_OBS) -> "SimulationResult":
        """Compose many results into one, as disjoint sub-clusters.

        The hierarchical-composition path promoted from the parallel
        runner's private merge machinery: per-query arrays concatenate
        (class tables are deduplicated by name and ``class_index``
        remapped), counters add, ``n_servers`` and ``busy_time_total``
        sum, ``duration`` is the max, and ``offered_load`` /
        ``mean_service_ms`` are server-weighted means — i.e. the inputs
        are treated as disjoint server pools observed over one shared
        clock (exactly a federation of shards; see
        :mod:`repro.federation`).

        ``order``, when given, holds each concatenated row's *global*
        position (a permutation of ``0..total-1``): shard results whose
        rows are subsets of one interleaved arrival stream merge back
        into global arrival order.

        Observability: by default each constituent's enabled recorder is
        folded into a fresh :class:`~repro.obs.recorder.TraceRecorder`
        with its server ids offset into the merged flat index and its
        query ids mapped to global positions
        (:meth:`TraceRecorder.merge_from`), so attribution and SLO
        accounting work on the merged result unchanged.  Pass
        ``obs=recorder`` (or ``obs=None``) to bind a pre-merged
        recorder instead and skip the automatic fold.

        Not merged: ``timeline`` (per-cluster transient state — read it
        on the constituents) and ``overload``/``replicas`` (live
        controller state).
        Merging is associative over this representation, which the test
        suite pins.
        """
        result_list = list(results)
        if not result_list:
            raise ConfigurationError("need at least one result to merge")

        sizes = [int(r.latency.size) for r in result_list]
        total = int(sum(sizes))
        order_arr: Optional[np.ndarray] = None
        if order is not None:
            order_arr = np.asarray(order, dtype=np.int64)
            if order_arr.size != total:
                raise ConfigurationError(
                    f"order has {order_arr.size} positions for "
                    f"{total} queries"
                )
            if not np.array_equal(np.sort(order_arr), np.arange(total)):
                raise ConfigurationError(
                    "order must be a permutation of 0..total-1"
                )

        # Deduplicated class table, first-appearance order.
        classes: List[ServiceClass] = []
        class_of: Dict[str, int] = {}
        remaps: List[np.ndarray] = []
        for r in result_list:
            remap = np.empty(len(r.classes), dtype=np.int32)
            for i, sc in enumerate(r.classes):
                idx = class_of.get(sc.name)
                if idx is None:
                    idx = len(classes)
                    class_of[sc.name] = idx
                    classes.append(sc)
                elif classes[idx] != sc:
                    raise ConfigurationError(
                        f"two different classes named {sc.name!r}"
                    )
                remap[i] = idx
            remaps.append(remap)

        def gather(parts: List[np.ndarray]) -> np.ndarray:
            concat = np.concatenate(parts)
            if order_arr is None:
                return concat
            out = np.empty_like(concat)
            out[order_arr] = concat
            return out

        def gather_optional(name: str, default):
            if all(getattr(r, name) is None for r in result_list):
                return None
            return gather([
                np.asarray(getattr(r, name)) if getattr(r, name) is not None
                else default(r)
                for r in result_list
            ])

        class_index = gather([
            remap[np.asarray(r.class_index, dtype=np.int64)]
            for remap, r in zip(remaps, result_list)
        ])
        fanout = gather([np.asarray(r.fanout) for r in result_list])
        arrival = gather([np.asarray(r.arrival) for r in result_list])
        latency = gather([np.asarray(r.latency) for r in result_list])
        rejected = gather([np.asarray(r.rejected) for r in result_list])
        measured = gather([np.asarray(r.measured) for r in result_list])
        failed = gather_optional(
            "failed", lambda r: np.zeros(int(r.latency.size), dtype=bool))
        coverage = gather_optional(
            "coverage", lambda r: np.where(np.isnan(r.latency), np.nan, 1.0))
        degraded = gather_optional(
            "degraded", lambda r: np.zeros(int(r.latency.size), dtype=bool))

        n_servers = int(sum(r.n_servers for r in result_list))
        policy_names: List[str] = []
        for r in result_list:
            if r.policy_name not in policy_names:
                policy_names.append(r.policy_name)
        policy_name = (policy_names[0] if len(policy_names) == 1
                       else "mixed(" + "+".join(policy_names) + ")")

        merged_obs = obs
        if obs is _AUTO_OBS:
            merged_obs = cls._merge_recorders(result_list, sizes, order_arr)

        return cls(
            policy_name=policy_name,
            n_servers=n_servers,
            seed=result_list[0].seed,
            offered_load=sum(r.offered_load * r.n_servers
                             for r in result_list) / n_servers,
            classes=tuple(classes),
            class_index=class_index,
            fanout=fanout,
            arrival=arrival,
            latency=latency,
            rejected=rejected,
            measured=measured,
            tasks_total=sum(r.tasks_total for r in result_list),
            tasks_missed_deadline=sum(r.tasks_missed_deadline
                                      for r in result_list),
            busy_time_total=sum(r.busy_time_total for r in result_list),
            duration=max(r.duration for r in result_list),
            mean_service_ms=sum(r.mean_service_ms * r.n_servers
                                for r in result_list) / n_servers,
            timeline=None,
            obs=merged_obs,
            failed=failed,
            tasks_failed=sum(r.tasks_failed for r in result_list),
            tasks_retried=sum(r.tasks_retried for r in result_list),
            tasks_hedged=sum(r.tasks_hedged for r in result_list),
            tasks_cancelled=sum(r.tasks_cancelled for r in result_list),
            server_failures=sum(r.server_failures for r in result_list),
            coverage=coverage,
            degraded=degraded,
            degraded_queries=sum(r.degraded_queries for r in result_list),
            shed_tasks=sum(r.shed_tasks for r in result_list),
            breaker_trips=sum(r.breaker_trips for r in result_list),
            cdf_rebootstraps=sum(r.cdf_rebootstraps for r in result_list),
            overload=None,
            hedges_suppressed=sum(r.hedges_suppressed for r in result_list),
            replicas=None,
        )

    @staticmethod
    def _merge_recorders(result_list: List["SimulationResult"],
                         sizes: List[int],
                         order_arr: Optional[np.ndarray]
                         ) -> Optional[TraceRecorder]:
        """Default obs fold for :meth:`merge`: fresh parent recorder,
        server ids offset by cumulative ``n_servers``, query ids mapped
        to global row positions."""
        traced = [r for r in result_list
                  if r.obs is not None and getattr(r.obs, "enabled", False)]
        if not traced:
            return None
        seen = set()
        for r in traced:
            if id(r.obs) in seen:
                raise ConfigurationError(
                    "results share one recorder object; their event "
                    "streams cannot be split per result — merge the "
                    "recorders yourself and pass the parent via obs=..."
                )
            seen.add(id(r.obs))
        parent = TraceRecorder()
        offset = 0
        pos = 0
        for r, n_rows in zip(result_list, sizes):
            if r.obs is not None and getattr(r.obs, "enabled", False):
                if order_arr is None:
                    qmap: Sequence[int] = np.arange(pos, pos + n_rows)
                else:
                    qmap = order_arr[pos:pos + n_rows]
                parent.merge_from(r.obs, server_id_offset=offset,
                                  query_id_map=qmap)
            offset += r.n_servers
            pos += n_rows
        return parent

    # ------------------------------------------------------------------
    def _class_by_name(self, name: str) -> ServiceClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        known = [cls.name for cls in self.classes]
        raise ConfigurationError(f"unknown class {name!r}; known: {known}")

    def _mask(self, class_name: Optional[str], fanout: Optional[int],
              measured_only: bool = True) -> np.ndarray:
        mask = ~self.rejected & ~np.isnan(self.latency)
        if measured_only:
            mask &= self.measured
        if class_name is not None:
            idx = [i for i, cls in enumerate(self.classes)
                   if cls.name == class_name]
            if not idx:
                raise ConfigurationError(f"unknown class {class_name!r}")
            mask &= self.class_index == idx[0]
        if fanout is not None:
            mask &= self.fanout == fanout
        return mask

    def latencies(self, class_name: Optional[str] = None,
                  fanout: Optional[int] = None) -> np.ndarray:
        """Measured (post-warm-up) latencies of completed queries."""
        return self.latency[self._mask(class_name, fanout)]

    def latencies_between(self, start_ms: float, end_ms: float,
                          class_name: Optional[str] = None,
                          fanout: Optional[int] = None) -> np.ndarray:
        """Latencies of queries that *arrived* within a time window.

        Used for transient analysis: e.g. tail latency during an
        injected server slowdown versus before/after it.
        """
        if end_ms <= start_ms:
            raise ConfigurationError(
                f"need start < end, got [{start_ms}, {end_ms})"
            )
        mask = self._mask(class_name, fanout)
        mask &= (self.arrival >= start_ms) & (self.arrival < end_ms)
        return self.latency[mask]

    def tail_between(self, start_ms: float, end_ms: float,
                     percentile: float = 99.0,
                     class_name: Optional[str] = None,
                     fanout: Optional[int] = None) -> float:
        """Tail latency over an arrival-time window."""
        values = self.latencies_between(start_ms, end_ms, class_name, fanout)
        if values.size == 0:
            raise ConfigurationError(
                f"no measured queries arrived in [{start_ms}, {end_ms})"
            )
        return exact_percentile(values, percentile)

    def count(self, class_name: Optional[str] = None,
              fanout: Optional[int] = None) -> int:
        return int(self._mask(class_name, fanout).sum())

    def tail(self, percentile: float = 99.0, class_name: Optional[str] = None,
             fanout: Optional[int] = None) -> float:
        """Measured tail latency of a class/fanout selection."""
        values = self.latencies(class_name, fanout)
        if values.size == 0:
            raise ConfigurationError(
                f"no measured samples for class={class_name!r}, fanout={fanout!r}"
            )
        return exact_percentile(values, percentile)

    # ------------------------------------------------------------------
    def types(self) -> Tuple[TypeKey, ...]:
        """The distinct (class, fanout) types among measured queries."""
        mask = self._mask(None, None)
        pairs = {
            (self.classes[int(c)].name, int(k))
            for c, k in zip(self.class_index[mask], self.fanout[mask])
        }
        return tuple(sorted(pairs))

    def per_type_tails(self, percentile: Optional[float] = None
                       ) -> Dict[TypeKey, float]:
        """Tail latency per query type; defaults to each class's own
        SLO percentile."""
        tails: Dict[TypeKey, float] = {}
        for class_name, fanout in self.types():
            p = percentile
            if p is None:
                p = self._class_by_name(class_name).percentile
            tails[(class_name, fanout)] = self.tail(p, class_name, fanout)
        return tails

    def bucket_latencies(self, class_name: str,
                         fanout_edges: Tuple[int, ...]) -> Dict[Tuple[int, int], np.ndarray]:
        """Measured latencies grouped into fanout ranges.

        ``fanout_edges`` are ascending lower edges, e.g. ``(1, 10, 100)``
        groups fanouts into [1, 10), [10, 100), [100, inf).  Useful for
        long-tailed fanout distributions (Zipf) where individual fanout
        values have too few samples for a stable percentile.
        """
        if not fanout_edges or list(fanout_edges) != sorted(set(fanout_edges)):
            raise ConfigurationError(
                f"fanout_edges must be ascending and unique, got {fanout_edges}"
            )
        mask = self._mask(class_name, None)
        fanouts = self.fanout[mask]
        latencies = self.latency[mask]
        edges = np.asarray(fanout_edges)
        bucket_index = np.searchsorted(edges, fanouts, side="right") - 1
        buckets: Dict[Tuple[int, int], np.ndarray] = {}
        upper = list(fanout_edges[1:]) + [np.iinfo(np.int32).max]
        for i, (lo, hi) in enumerate(zip(fanout_edges, upper)):
            in_bucket = bucket_index == i
            if in_bucket.any():
                buckets[(int(lo), int(hi))] = latencies[in_bucket]
        return buckets

    def meets_all_slos(self, min_samples: int = 100,
                       fanout_buckets: Optional[Tuple[int, ...]] = None) -> bool:
        """Whether every query type meets its class SLO (§IV.B).

        Types with fewer than ``min_samples`` measured queries are
        folded into their class-level check instead of being judged on
        a noisy percentile.  ``fanout_buckets`` replaces exact-fanout
        types by fanout ranges — appropriate for workloads with many
        distinct fanouts (see :meth:`bucket_latencies`).
        """
        checked_any = False
        if fanout_buckets is None:
            for class_name, fanout in self.types():
                cls = self._class_by_name(class_name)
                if self.count(class_name, fanout) >= min_samples:
                    checked_any = True
                    if self.tail(cls.percentile, class_name,
                                 fanout) > cls.slo_ms:
                        return False
        else:
            for cls in self.classes:
                if self.count(cls.name) == 0:
                    continue
                for values in self.bucket_latencies(cls.name,
                                                    fanout_buckets).values():
                    if values.size >= min_samples:
                        checked_any = True
                        if exact_percentile(values,
                                            cls.percentile) > cls.slo_ms:
                            return False
        for cls in self.classes:
            if self.count(cls.name) == 0:
                continue
            checked_any = True
            if self.tail(cls.percentile, cls.name) > cls.slo_ms:
                return False
        if not checked_any:
            raise ConfigurationError("no measured queries to check SLOs against")
        return True

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of server-time spent serving tasks."""
        if self.duration <= 0:
            return 0.0
        return self.busy_time_total / (self.n_servers * self.duration)

    def deadline_miss_ratio(self) -> float:
        if self.tasks_total == 0:
            return 0.0
        return self.tasks_missed_deadline / self.tasks_total

    def rejection_ratio(self) -> float:
        """Fraction of measured queries rejected by admission control."""
        window = self.measured
        total = int(window.sum())
        if total == 0:
            return 0.0
        return float((self.rejected & window).sum()) / total

    def accepted_load(self) -> float:
        """Offered load carried by *accepted* queries only (Fig. 7a)."""
        window = self.measured & ~self.rejected
        if self.duration <= 0:
            return 0.0
        span = self.arrival[self.measured]
        if span.size < 2:
            return 0.0
        horizon = float(span.max() - span.min())
        if horizon <= 0:
            return 0.0
        demand = float(self.fanout[window].sum()) * self.mean_service_ms
        return demand / (self.n_servers * horizon)

    def coverage_values(self) -> np.ndarray:
        """Served-fraction of every measured completed query.

        All-ones when the run had no overload policy (every completed
        query was served in full).
        """
        mask = self._mask(None, None)
        if self.coverage is None:
            return np.ones(int(mask.sum()))
        return self.coverage[mask]

    def coverage_p50(self) -> float:
        """Median served coverage of completed queries (1.0 = full)."""
        values = self.coverage_values()
        if values.size == 0:
            return 1.0
        return float(exact_percentile(values, 50.0))

    def coverage_p99(self) -> float:
        """Coverage attained by at least 99% of completed queries.

        Coverage is a higher-is-better metric, so its "p99" is the 1st
        percentile of the distribution: 99% of served queries got at
        least this fraction of their fanout.
        """
        values = self.coverage_values()
        if values.size == 0:
            return 1.0
        return float(exact_percentile(values, 1.0))

    def queries_failed(self) -> int:
        """Queries that permanently lost a task slot to failures."""
        if self.failed is None:
            return 0
        return int(self.failed.sum())

    def failed_ratio(self) -> float:
        """Fraction of measured queries that failed under fault injection."""
        if self.failed is None:
            return 0.0
        total = int(self.measured.sum())
        if total == 0:
            return 0.0
        return float((self.failed & self.measured).sum()) / total

    def attribution(self):
        """Cluster-level latency attribution from the run's trace.

        Requires the run to have been traced (``obs`` set); returns a
        :class:`repro.obs.attribution.ClusterAttribution` over every
        completed query in the event stream.
        """
        if self.obs is None:
            raise ConfigurationError(
                "result has no trace recorder; run with a TraceRecorder "
                "to enable latency attribution"
            )
        from repro.obs.attribution import ClusterAttribution
        return ClusterAttribution.from_recorder(self.obs)

    def attribution_summary(self) -> Dict[str, float]:
        """Flat attribution numbers for tabular output (CSV/JSON rows).

        Per-component p99 plus each component's share of total latency,
        derived from :meth:`attribution`.  Empty dict when the run was
        untraced (so callers can merge it unconditionally).
        """
        if self.obs is None:
            return {}
        table = self.attribution().mechanism_table()
        out: Dict[str, float] = {}
        for component, row in table.items():
            out[f"attr_{component}_p99"] = row["p99"]
            out[f"attr_{component}_share"] = row["share"]
        return out

    def summary(self) -> Dict[str, float]:
        """Headline numbers for logging/CLI output."""
        out = {
            "offered_load": self.offered_load,
            "utilization": self.utilization(),
            "deadline_miss_ratio": self.deadline_miss_ratio(),
            "rejection_ratio": self.rejection_ratio(),
            "queries_measured": float(self._mask(None, None).sum()),
        }
        if self.server_failures or self.queries_failed():
            out.update({
                "server_failures": float(self.server_failures),
                "failed_ratio": self.failed_ratio(),
                "tasks_retried": float(self.tasks_retried),
                "tasks_hedged": float(self.tasks_hedged),
                "tasks_cancelled": float(self.tasks_cancelled),
            })
        if (self.degraded_queries or self.shed_tasks or self.breaker_trips
                or self.cdf_rebootstraps):
            out.update({
                "degraded_queries": float(self.degraded_queries),
                "shed_tasks": float(self.shed_tasks),
                "breaker_trips": float(self.breaker_trips),
                "cdf_rebootstraps": float(self.cdf_rebootstraps),
                "coverage_p50": self.coverage_p50(),
                "coverage_p99": self.coverage_p99(),
            })
        return out
