"""Fault-aware event-calendar simulation (the fast path under faults).

:func:`repro.cluster.simulation.simulate` routes here when the config
carries an active :class:`~repro.faults.plan.FaultPlan` or an active
:class:`~repro.overload.OverloadPolicy` (overload-only runs use an
empty fault plan).  The no-fault hot loop stays untouched; this loop
layers crash/recovery transitions, pause/kill semantics,
retry-with-backoff requeues, queued-copy timeouts, hedged requests,
and the overload controller (adaptive admission, circuit breakers,
partial-fanout degradation, CDF drift re-bootstrap) on top of the same
model, sharing the spec/budget preparation helpers so the underlying
trace is byte-identical.

Event ordering at equal timestamps (the contract the DES-kernel fault
path mirrors; see ``docs/faults.md``):

1. crash/recovery transitions,
2. task completions,
3. retry requeues and queued-copy timeouts,
4. hedge timers,
5. query arrivals.

Ties *within* a rank replay in creation order (a monotone sequence
number), matching the kernel's (time, priority, insertion-order) rule.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.results import SimulationResult, Timeline
from repro.core.deadline import DeadlineEstimator
from repro.errors import ConfigurationError
from repro.faults.plan import FAIL, FaultPlan, fault_horizon, pick_server
from repro.obs.events import (
    DEADLINE_MISS,
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_REJECTED,
    QUERY_TIMEOUT,
    SERVER_FAIL,
    SERVER_RECOVER,
    TASK_CANCEL,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
    TASK_HEDGE,
    TASK_RETRY,
)

#: Heap ranks (orderd processing at equal times).
_R_TRANSITION = 0
_R_COMPLETE = 1
_R_RETRY = 2
_R_HEDGE = 3


class _Slot:
    """Mitigation state of one (query, slot) pair — the fast-path twin
    of :class:`repro.faults.kernel._Slot`."""

    __slots__ = ("qidx", "slot", "key", "deadline", "primary_sid", "done",
                 "failed", "attempts", "hedges", "pending", "live")

    def __init__(self, qidx: int, slot: int, key: Tuple, deadline: float,
                 primary_sid: int) -> None:
        self.qidx = qidx
        self.slot = slot
        self.key = key
        self.deadline = deadline
        self.primary_sid = primary_sid
        self.done = False
        self.failed = False
        self.attempts = 0
        self.hedges = 0
        self.pending = 0
        self.live: Dict[int, int] = {}  # copy id -> server id

    @property
    def open(self) -> bool:
        return not self.done and not self.failed


def simulate_with_faults(config: ClusterConfig) -> SimulationResult:
    """Run one fault-injected simulation.

    Same statistics contract as the no-fault loop, plus fault outcome
    counters and the per-query ``failed`` mask (failed queries keep
    ``latency`` = NaN and are excluded from latency statistics).
    """
    from repro.cluster.simulation import (
        _budget_array,
        _prepare_specs,
        _server_streams,
    )

    plan = config.faults
    overload_policy = config.overload
    overload_active = overload_policy is not None and overload_policy.active
    assert (plan is not None and plan.active) or overload_active
    if plan is None:
        # Overload-only run: an empty (inactive) plan keeps the fault
        # machinery inert without special-casing the loop.
        plan = FaultPlan()
    policy = config.resolve_policy()
    root_rng = np.random.default_rng(config.seed)
    spec_rng, placement_rng, service_rng = root_rng.spawn(3)

    n = config.n_servers
    server_cdfs = config.resolve_server_cdfs()
    server_stream = _server_streams(config, server_cdfs, service_rng)

    estimator = config.estimator
    if estimator is None:
        estimator = DeadlineEstimator(dict(server_cdfs))

    specs, classes, class_index, fanout, arrival = _prepare_specs(
        config, spec_rng)
    m = len(specs)

    # Hot-loop mirrors: plain Python lists for the per-event scalar
    # reads/writes (list indexing beats numpy scalar indexing by ~5x);
    # the numpy originals stay around for the vectorized wrap-up.
    arrival_l = arrival.tolist()
    fanout_l = fanout.tolist()
    class_index_l = class_index.tolist()
    remaining = fanout_l.copy()
    latency = np.full(m, np.nan)
    rejected = np.zeros(m, dtype=bool)
    failed_q = np.zeros(m, dtype=bool)
    coverage_q: Optional[np.ndarray] = None
    degraded_q: Optional[np.ndarray] = None
    if overload_active:
        coverage_q = np.full(m, np.nan)
        degraded_q = np.zeros(m, dtype=bool)

    # ------------------------------------------------------------------
    # Fault machinery.
    # ------------------------------------------------------------------
    materialized = plan.materialize(n, fault_horizon(float(arrival[-1])))
    kill_mode = plan.kill_mode
    retry = plan.retry
    hedge = plan.hedge
    straggling = bool(plan.stragglers)
    straggler_factor = materialized.straggler_factor

    # ------------------------------------------------------------------
    # Server state.  ``busy[sid]`` holds the in-service copy id or -1;
    # ``epoch`` invalidates completions scheduled before a crash.
    # ------------------------------------------------------------------
    queues = [policy.create_queue() for _ in range(n)]
    busy = [-1] * n
    down = [False] * n
    epoch = [0] * n
    service_start = [0.0] * n
    paused: List[Optional[int]] = [None] * n
    all_servers = tuple(range(n))

    # Incrementally maintained load signals (the retry/hedge target
    # rule and the overload router read them on every decision;
    # rebuilding n-element lists per event dominated those paths).
    # ``depth[sid]`` = len(queues[sid]) + (1 if busy) with phantoms
    # included, ``up_l[sid]`` mirrors ``not down[sid]``.
    depth = [0] * n
    up_l = [True] * n

    copy_slot: Dict[int, _Slot] = {}   # copy id -> its slot
    started: set = set()               # copies that entered service once
    cancelled: set = set()             # queued phantoms (lazy removal)
    discard: set = set()               # in-service losers (result void)
    next_cid = 0
    # Queues advertising supports_cancel (LazyEDFTaskQueue) take
    # cancellations in-place; ``qitem`` maps a queued copy to the exact
    # entry object pushed so cancel-by-identity can find it.  Other
    # queue types fall back to the ``cancelled`` phantom set.
    q_cancels = bool(queues) and getattr(queues[0], "supports_cancel", False)
    qitem: Dict[int, Tuple[int, int]] = {}

    # Completions deferred for one vectorized latency stamp at the end
    # (tracing runs stamp inline — the recorder needs the value live).
    comp_idx: List[int] = []
    comp_time: List[float] = []

    heap: List[Tuple] = []  # (time, rank, seq, kind, payload...)
    seq = 0
    push, pop = heapq.heappush, heapq.heappop
    for time, sid, kind in materialized.transitions():
        push(heap, (time, _R_TRANSITION, seq,
                    "F" if kind == FAIL else "R", sid))
        seq += 1

    admission = config.admission
    ctrl = None
    if overload_active:
        ctrl = overload_policy.build(n, estimator, config.recorder)
    placement = config.placement
    placement_wants_depths = bool(
        placement is not None and getattr(placement, "needs_queue_depths",
                                          False)
    )
    perturbations = tuple(config.perturbations)

    online = estimator.online_enabled
    # A drift re-bootstrap can swap CDFs mid-run, and an overload
    # controller stamps its own deadlines anyway — skip the
    # precomputed-budget fast path whenever one is active.
    homogeneous_fast = (estimator.homogeneous and not online
                        and placement is None and ctrl is None)
    query_budget: List[float] = []
    if homogeneous_fast:
        query_budget = _budget_array(
            estimator, classes, class_index, fanout, n,
            [spec.servers for spec in specs])
    use_budget_array = bool(query_budget)

    busy_total = 0.0
    tasks_total = 0
    tasks_missed = 0
    tasks_failed = 0
    tasks_retried = 0
    tasks_hedged = 0
    tasks_cancelled = 0
    server_failures = 0
    now = 0.0
    qi = 0
    infinity = float("inf")

    sample_interval = config.timeline_interval_ms
    next_sample = sample_interval if sample_interval is not None else infinity
    sample_times: List[float] = []
    sample_queued: List[int] = []
    sample_busy: List[int] = []
    queued_tasks = 0
    busy_servers = 0

    rec = config.recorder
    tracing = rec is not None and rec.enabled

    # ------------------------------------------------------------------
    # Helpers (closures over the state above).
    # ------------------------------------------------------------------
    def sample_duration(sid: int) -> float:
        duration = server_stream[sid].next()
        if straggling:
            duration *= straggler_factor(sid, now)
        for perturbation in perturbations:
            if perturbation.applies(sid, now):
                duration *= perturbation.factor
        return duration

    def start_service(sid: int, cid: int, restart: bool = False) -> None:
        nonlocal seq, tasks_total, tasks_missed, busy_servers
        slot = copy_slot[cid]
        busy[sid] = cid
        busy_servers += 1
        depth[sid] += 1
        service_start[sid] = now
        duration = sample_duration(sid)
        if not restart:
            started.add(cid)
            tasks_total += 1
            missed = now > slot.deadline
            if missed:
                tasks_missed += 1
            if admission is not None:
                admission.record_task(missed, now)
            if tracing:
                rec.inc("tasks_dequeued")
                rec.emit(TASK_DEQUEUE, now, server_id=sid,
                         query_id=slot.qidx,
                         class_name=classes[class_index[slot.qidx]].name,
                         fanout=int(fanout[slot.qidx]),
                         deadline=slot.deadline, slack=slot.deadline - now,
                         extra={"slot": slot.slot})
                if missed:
                    rec.inc("deadline_misses")
                    rec.emit(DEADLINE_MISS, now, server_id=sid,
                             query_id=slot.qidx, deadline=slot.deadline,
                             slack=slot.deadline - now)
            if ctrl is not None:
                ctrl.record_task(sid, slot.qidx, missed,
                                 slot.deadline - now, now)
        push(heap, (now + duration, _R_COMPLETE, seq, "C", sid, cid,
                    duration, epoch[sid]))
        seq += 1

    def start_next(sid: int) -> bool:
        """Pull the next live queued copy, skipping phantoms."""
        queue = queues[sid]
        nonlocal queued_tasks
        if q_cancels:
            item, popped = queue.pop_live()
            queued_tasks -= popped
            depth[sid] -= popped
            if item is None:
                return False
            del qitem[item[1]]
            start_service(sid, item[1])
            return True
        while len(queue) > 0:
            qidx, cid = queue.pop()
            queued_tasks -= 1
            depth[sid] -= 1
            if cid in cancelled:
                cancelled.discard(cid)
                continue
            start_service(sid, cid)
            return True
        return False

    def enqueue_copy(sid: int, cid: int) -> None:
        nonlocal queued_tasks
        slot = copy_slot[cid]
        if busy[sid] >= 0 or down[sid]:
            item = (slot.qidx, cid)
            queues[sid].push(item, slot.key)
            if q_cancels:
                qitem[cid] = item
            queued_tasks += 1
            depth[sid] += 1
            if tracing:
                rec.emit(TASK_ENQUEUE, now, server_id=sid,
                         query_id=slot.qidx, deadline=slot.deadline,
                         slack=slot.deadline - now,
                         extra={"queue_len": len(queues[sid])})
        else:
            start_service(sid, cid)

    def new_copy(slot: _Slot, sid: int) -> int:
        nonlocal next_cid
        cid = next_cid
        next_cid += 1
        copy_slot[cid] = slot
        slot.live[cid] = sid
        return cid

    def arm_timeout(cid: int) -> None:
        nonlocal seq
        if retry is not None and retry.timeout_ms is not None:
            push(heap, (now + retry.timeout_ms, _R_RETRY, seq, "T", cid))
            seq += 1

    def arm_hedge(slot: _Slot) -> None:
        nonlocal seq
        if hedge is not None:
            delay = hedge.delay_for(server_cdfs[slot.primary_sid])
            push(heap, (now + delay, _R_HEDGE, seq, "H", slot, delay))
            seq += 1

    def slot_fail(slot: _Slot) -> None:
        nonlocal tasks_failed
        slot.failed = True
        tasks_failed += 1
        if tracing and not failed_q[slot.qidx]:
            # First slot loss: the query just became permanently failed.
            rec.inc("queries_timed_out")
            rec.emit(QUERY_TIMEOUT, now, query_id=slot.qidx,
                     class_name=classes[class_index[slot.qidx]].name,
                     fanout=int(fanout[slot.qidx]))
        failed_q[slot.qidx] = True
        remaining[slot.qidx] -= 1

    def schedule_requeue(slot: _Slot, reason: str) -> None:
        nonlocal seq
        if retry is None or slot.attempts >= retry.max_retries:
            slot_fail(slot)
            return
        slot.attempts += 1
        slot.pending += 1
        push(heap, (now + retry.backoff_ms * slot.attempts, _R_RETRY, seq,
                    "Q", slot, reason))
        seq += 1

    def handle_kill(cid: int) -> None:
        nonlocal tasks_cancelled
        slot = copy_slot[cid]
        if not slot.open:
            return
        sid = slot.live.pop(cid, -1)
        if slot.live or slot.pending:
            tasks_cancelled += 1
            if tracing:
                rec.emit(TASK_CANCEL, now, server_id=sid,
                         query_id=slot.qidx,
                         extra={"reason": "server_fail", "slot": slot.slot})
            return
        schedule_requeue(slot, "server_fail")

    # ------------------------------------------------------------------
    # Main loop: heap events (transitions, completions, timers) merge
    # with sorted arrivals; heap wins ties, matching the no-fault loop.
    # Between consecutive arrivals the heap is drained as one batched
    # run — same-timestamp events pop back-to-back with no per-event
    # re-evaluation of the arrival cursor — and completion latencies
    # are deferred to a single vectorized stamp at the end of the run
    # loop (processing order, and hence every RNG draw and float
    # accumulation, is unchanged; only the array writes are batched).
    # ------------------------------------------------------------------
    has_sampling = sample_interval is not None
    while qi < m or heap:
        next_arrival = arrival_l[qi] if qi < m else infinity

        # ----- heap drain: every event at or before the next arrival --
        while heap:
            head = heap[0]
            now = head[0]
            if now > next_arrival:
                break
            if has_sampling:
                while next_sample <= now:
                    sample_times.append(next_sample)
                    sample_queued.append(queued_tasks)
                    sample_busy.append(busy_servers)
                    next_sample += sample_interval
            pop(heap)
            kind = head[3]

            if kind == "F":                      # ----- server crash
                sid = head[4]
                server_failures += 1
                down[sid] = True
                up_l[sid] = False
                epoch[sid] += 1
                if tracing:
                    rec.emit(SERVER_FAIL, now, server_id=sid)
                if ctrl is not None:
                    ctrl.on_server_fail(sid, now)
                victims: List[int] = []
                cid = busy[sid]
                if cid >= 0:
                    busy_total += now - service_start[sid]
                    busy[sid] = -1
                    busy_servers -= 1
                    depth[sid] -= 1
                    if cid in discard:
                        discard.discard(cid)
                    elif kill_mode:
                        victims.append(cid)
                    else:
                        paused[sid] = cid
                if kill_mode:
                    queue = queues[sid]
                    if q_cancels:
                        while True:
                            item, popped = queue.pop_live()
                            queued_tasks -= popped
                            depth[sid] -= popped
                            if item is None:
                                break
                            del qitem[item[1]]
                            victims.append(item[1])
                    else:
                        while len(queue) > 0:
                            _, qcid = queue.pop()
                            queued_tasks -= 1
                            depth[sid] -= 1
                            if qcid in cancelled:
                                cancelled.discard(qcid)
                                continue
                            victims.append(qcid)
                    for victim in victims:
                        handle_kill(victim)

            elif kind == "R":                    # ----- server recovery
                sid = head[4]
                down[sid] = False
                up_l[sid] = True
                if tracing:
                    rec.emit(SERVER_RECOVER, now, server_id=sid)
                if ctrl is not None:
                    ctrl.on_server_recover(sid, now)
                if paused[sid] is not None:
                    cid, paused[sid] = paused[sid], None
                    start_service(sid, cid, restart=True)
                else:
                    start_next(sid)

            elif kind == "C":                    # ----- task completion
                sid = head[4]
                cid = head[5]
                if head[7] != epoch[sid]:
                    continue  # stale: the server crashed mid-service
                duration = head[6]
                busy_total += duration
                busy[sid] = -1
                busy_servers -= 1
                depth[sid] -= 1
                if cid in discard:
                    discard.discard(cid)
                else:
                    slot = copy_slot[cid]
                    slot.done = True
                    slot.live.pop(cid, None)
                    if online:
                        estimator.record(sid, duration)
                    if ctrl is not None:
                        ctrl.on_task_complete(sid, duration, now)
                    if tracing:
                        rec.emit(TASK_COMPLETE, now, server_id=sid,
                                 query_id=slot.qidx,
                                 class_name=classes[class_index[slot.qidx]].name,
                                 extra={"duration": duration,
                                        "slot": slot.slot})
                    for other_cid, other_sid in slot.live.items():
                        if busy[other_sid] == other_cid:
                            discard.add(other_cid)
                        elif paused[other_sid] == other_cid:
                            # A paused loser evaporates: nothing to
                            # restart at its server's recovery.
                            paused[other_sid] = None
                        elif q_cancels:
                            queues[other_sid].cancel(qitem.pop(other_cid))
                        else:
                            cancelled.add(other_cid)
                        tasks_cancelled += 1
                        if tracing:
                            rec.emit(TASK_CANCEL, now, server_id=other_sid,
                                     query_id=slot.qidx,
                                     extra={"reason": "hedge_lost",
                                            "slot": slot.slot})
                    slot.live.clear()
                    qidx = slot.qidx
                    remaining[qidx] -= 1
                    if remaining[qidx] == 0 and not failed_q[qidx]:
                        if tracing:
                            latency[qidx] = now - arrival_l[qidx]
                            rec.observe_latency(latency[qidx])
                            rec.inc("queries_completed")
                            rec.emit(QUERY_COMPLETE, now, query_id=qidx,
                                     class_name=classes[class_index[qidx]].name,
                                     fanout=int(fanout[qidx]),
                                     extra={"latency": latency[qidx]})
                        else:
                            comp_idx.append(qidx)
                            comp_time.append(now)
                if not down[sid]:
                    start_next(sid)

            elif kind == "Q":                    # ----- retry requeue
                slot, reason = head[4], head[5]
                slot.pending -= 1
                if not slot.open:
                    continue
                target = pick_server(depth, up_l,
                                     exclude=list(slot.live.values()))
                if target < 0:
                    slot_fail(slot)
                    continue
                tasks_retried += 1
                if tracing:
                    rec.emit(TASK_RETRY, now, server_id=target,
                             query_id=slot.qidx, deadline=slot.deadline,
                             extra={"attempt": slot.attempts,
                                    "reason": reason, "slot": slot.slot})
                cid = new_copy(slot, target)
                enqueue_copy(target, cid)
                arm_timeout(cid)

            elif kind == "T":                    # ----- queued-copy timeout
                cid = head[4]
                slot = copy_slot[cid]
                if not slot.open or cid not in slot.live:
                    continue
                if cid in started:
                    continue  # in (or past) service
                if slot.attempts >= retry.max_retries:
                    continue  # budget exhausted: leave it queued
                sid = slot.live.pop(cid)
                if q_cancels:
                    queues[sid].cancel(qitem.pop(cid))
                else:
                    cancelled.add(cid)
                tasks_cancelled += 1
                if tracing:
                    rec.emit(TASK_CANCEL, now, server_id=sid,
                             query_id=slot.qidx,
                             extra={"reason": "timeout", "slot": slot.slot})
                schedule_requeue(slot, "timeout")

            else:                                # ----- hedge timer ("H")
                slot, delay = head[4], head[5]
                if not slot.open or slot.hedges >= hedge.max_hedges:
                    continue
                target = pick_server(depth, up_l,
                                     exclude=list(slot.live.values()))
                if target >= 0:
                    slot.hedges += 1
                    tasks_hedged += 1
                    if tracing:
                        rec.emit(TASK_HEDGE, now, server_id=target,
                                 query_id=slot.qidx, deadline=slot.deadline,
                                 extra={"hedge": slot.hedges,
                                        "slot": slot.slot})
                    cid = new_copy(slot, target)
                    enqueue_copy(target, cid)
                    arm_timeout(cid)
                    if slot.hedges >= hedge.max_hedges:
                        continue
                push(heap, (now + delay, _R_HEDGE, seq, "H", slot, delay))
                seq += 1

        if qi >= m:
            break  # heap fully drained, no arrivals left

        # ----- query arrival -------------------------------------------
        now = next_arrival
        if has_sampling:
            while next_sample <= now:
                sample_times.append(next_sample)
                sample_queued.append(queued_tasks)
                sample_busy.append(busy_servers)
                next_sample += sample_interval
        qidx = qi
        qi += 1
        if tracing:
            rec.inc("queries_arrived")
            rec.emit(QUERY_ARRIVE, now, query_id=qidx,
                     class_name=classes[class_index[qidx]].name,
                     fanout=int(fanout[qidx]))
        if admission is not None and not admission.admit(now):
            rejected[qidx] = True
            if tracing:
                rec.inc("queries_rejected")
                rec.emit(QUERY_REJECTED, now, query_id=qidx,
                         class_name=classes[class_index[qidx]].name,
                         fanout=int(fanout[qidx]),
                         extra={"miss_ratio": admission.miss_ratio()})
            continue

        spec = specs[qidx]
        k = fanout_l[qidx]
        cls = classes[class_index_l[qidx]]

        if spec.servers is not None:
            servers = spec.servers
        elif placement is not None:
            if placement_wants_depths:
                servers = placement(spec, placement_rng, tuple(depth))
            else:
                servers = placement(spec, placement_rng)
            if len(servers) != k:
                raise ConfigurationError(
                    f"placement returned {len(servers)} servers for fanout {k}"
                )
        elif k == n:
            servers = all_servers
        elif k == 1:
            servers = (int(placement_rng.integers(n)),)
        else:
            servers = tuple(
                placement_rng.choice(n, size=k, replace=False).tolist()
            )

        if ctrl is not None:
            decision = ctrl.route_query(now, qidx, cls, servers, depth)
            if decision is None:
                rejected[qidx] = True
                if tracing:
                    rec.inc("queries_rejected")
                    rec.emit(QUERY_REJECTED, now, query_id=qidx,
                             class_name=cls.name, fanout=k,
                             extra={"miss_ratio": ctrl.miss_ratio()})
                continue
            servers = decision.servers
            deadline = decision.deadline
            coverage_q[qidx] = decision.coverage
            degraded_q[qidx] = decision.degraded
            remaining[qidx] = len(servers)
        elif use_budget_array and spec.servers is None:
            deadline = now + query_budget[qidx]
        elif estimator.homogeneous:
            deadline = estimator.deadline(now, cls, fanout=k)
        else:
            deadline = estimator.deadline(now, cls, servers=servers)

        key = policy.queue_key(now, cls, deadline)
        for j, sid in enumerate(servers):
            slot = _Slot(qidx, j, key, deadline, sid)
            if kill_mode and down[sid]:
                # Dispatch-time redirect away from a down server (free:
                # no retry budget consumed).
                target = pick_server(depth, up_l)
                if target < 0:
                    slot_fail(slot)
                    continue
                tasks_retried += 1
                if tracing:
                    rec.emit(TASK_RETRY, now, server_id=target,
                             query_id=qidx, deadline=deadline,
                             extra={"attempt": 0, "reason": "redirect",
                                    "slot": j})
                sid = target
            cid = new_copy(slot, sid)
            enqueue_copy(sid, cid)
            arm_timeout(cid)
            arm_hedge(slot)

    # ------------------------------------------------------------------
    # Wrap up.
    # ------------------------------------------------------------------
    if comp_idx:
        # Deferred completion stamps, applied in one vectorized pass.
        # Elementwise float64 subtraction — bit-identical to the scalar
        # ``now - arrival[qidx]`` writes it replaces.
        idx = np.asarray(comp_idx, dtype=np.intp)
        latency[idx] = np.asarray(comp_time) - arrival[idx]

    warmup_count = int(m * config.warmup_fraction)
    measured = np.zeros(m, dtype=bool)
    measured[warmup_count:] = True

    timeline = None
    if sample_interval is not None:
        timeline = Timeline(
            time=np.asarray(sample_times),
            queued_tasks=np.asarray(sample_queued, dtype=np.int64),
            busy_servers=np.asarray(sample_busy, dtype=np.int64),
        )

    mean_service = float(
        np.mean([server_cdfs[sid].mean() for sid in range(n)])
    )
    if config.workload is not None:
        offered = config.workload.load(n)
    else:
        span = float(arrival.max() - arrival.min())
        offered = (
            float(fanout.sum()) * mean_service / (n * span) if span > 0 else 0.0
        )

    if tracing:
        rec.set_gauge("utilization",
                      busy_total / (n * now) if now > 0 else 0.0)
        rec.set_gauge("deadline_miss_ratio",
                      tasks_missed / tasks_total if tasks_total else 0.0)
        rec.set_gauge("duration_ms", now)

    return SimulationResult(
        policy_name=policy.name,
        n_servers=n,
        seed=config.seed,
        offered_load=offered,
        classes=tuple(classes),
        class_index=class_index,
        fanout=fanout,
        arrival=arrival,
        latency=latency,
        rejected=rejected,
        measured=measured,
        tasks_total=tasks_total,
        tasks_missed_deadline=tasks_missed,
        busy_time_total=busy_total,
        duration=now,
        mean_service_ms=mean_service,
        timeline=timeline,
        obs=rec if tracing else None,
        failed=failed_q,
        tasks_failed=tasks_failed,
        tasks_retried=tasks_retried,
        tasks_hedged=tasks_hedged,
        tasks_cancelled=tasks_cancelled,
        server_failures=server_failures,
        coverage=coverage_q,
        degraded=degraded_q,
        degraded_queries=ctrl.degraded_queries if ctrl is not None else 0,
        shed_tasks=ctrl.shed_tasks if ctrl is not None else 0,
        breaker_trips=ctrl.breaker_trips if ctrl is not None else 0,
        cdf_rebootstraps=ctrl.cdf_rebootstraps if ctrl is not None else 0,
        overload=ctrl,
    )
