"""Fault-aware event-calendar simulation (the fast path under faults).

:func:`repro.cluster.simulation.simulate` routes here when the config
carries an active :class:`~repro.faults.plan.FaultPlan` or an active
:class:`~repro.overload.OverloadPolicy` (overload-only runs use an
empty fault plan).  The no-fault hot loop stays untouched; this loop
layers crash/recovery transitions, pause/kill semantics,
retry-with-backoff requeues, queued-copy timeouts, hedged requests,
and the overload controller (adaptive admission, circuit breakers,
partial-fanout degradation, CDF drift re-bootstrap) on top of the same
model, sharing the spec/budget preparation helpers so the underlying
trace is byte-identical.

Like the no-fault kernel, the common benchmarking shape — untraced,
homogeneous, offline estimator, default placement, FIFO/T-EDFQ/TF-EDFQ
— runs one of two specialized flat loops instead of the generic one:

* :func:`_fault_loop_pause` for plans with no mitigations (crashes
  pause servers; no copies, timers, or cancellations exist), the fault
  twin of ``_fast_loop_static``;
* :func:`_fault_loop_mitigated` for retry/hedge plans, with the policy
  queues, slot records, and mitigation timers inlined as plain lists.

Both are pinned bit-identical to the generic loop by the golden-master
corpus: event order, RNG consumption, and float accumulation order are
exactly the generic loop's — only the bookkeeping around them is
specialized (block-drained service samples, int event codes, hoisted
hedge delays, vectorized deadline/key precomputation).

Event ordering at equal timestamps (the contract the DES-kernel fault
path mirrors; see ``docs/faults.md``):

1. crash/recovery transitions,
2. task completions,
3. retry requeues and queued-copy timeouts,
4. hedge timers,
5. query arrivals.

Ties *within* a rank replay in creation order (a monotone sequence
number), matching the kernel's (time, priority, insertion-order) rule.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.results import SimulationResult, Timeline
from repro.core.deadline import DeadlineEstimator
from repro.core.policies import FIFOPolicy, TEDFPolicy, TFEDFPolicy
from repro.errors import ConfigurationError
from repro.faults.plan import FAIL, FaultPlan, fault_horizon, pick_server
from repro.obs.events import (
    DEADLINE_MISS,
    QUERY_ARRIVE,
    QUERY_COMPLETE,
    QUERY_REJECTED,
    QUERY_TIMEOUT,
    SERVER_FAIL,
    SERVER_RECOVER,
    TASK_CANCEL,
    TASK_COMPLETE,
    TASK_DEQUEUE,
    TASK_ENQUEUE,
    TASK_HEDGE,
    TASK_RETRY,
)

#: Heap ranks (ordered processing at equal times).
_R_TRANSITION = 0
_R_COMPLETE = 1
_R_RETRY = 2
_R_HEDGE = 3

#: Integer event codes used by the specialized loops (the generic loop
#: keeps its one-character strings).  FAIL/RECOVER share rank 0 — the
#: unique sequence number breaks their ties, so codes are never
#: compared by the heap.
_E_FAIL = 0
_E_RECOVER = 1
_E_COMPLETE = 2
_E_REQUEUE = 3
_E_TIMEOUT = 4
_E_HEDGE = 5


class _Slot:
    """Mitigation state of one (query, slot) pair — the fast-path twin
    of :class:`repro.faults.kernel._Slot`."""

    __slots__ = ("qidx", "slot", "key", "deadline", "primary_sid", "done",
                 "failed", "attempts", "hedges", "pending", "live")

    def __init__(self, qidx: int, slot: int, key: Tuple, deadline: float,
                 primary_sid: int) -> None:
        self.qidx = qidx
        self.slot = slot
        self.key = key
        self.deadline = deadline
        self.primary_sid = primary_sid
        self.done = False
        self.failed = False
        self.attempts = 0
        self.hedges = 0
        self.pending = 0
        self.live: Dict[int, int] = {}  # copy id -> server id

    @property
    def open(self) -> bool:
        return not self.done and not self.failed


def _finalize_faults(config: ClusterConfig, policy, n: int, server_cdfs,
                     classes, class_index, fanout, arrival, latency,
                     rejected, failed_q, busy_total: float,
                     tasks_total: int, tasks_missed: int, now: float,
                     tasks_failed: int, tasks_retried: int,
                     tasks_hedged: int, tasks_cancelled: int,
                     server_failures: int, sample_times, sample_queued,
                     sample_busy, coverage_q, degraded_q, ctrl, rc, rec,
                     tracing: bool) -> SimulationResult:
    """Shared wrap-up for the generic and specialized fault loops."""
    m = len(class_index)
    warmup_count = int(m * config.warmup_fraction)
    measured = np.zeros(m, dtype=bool)
    measured[warmup_count:] = True

    timeline = None
    if config.timeline_interval_ms is not None:
        timeline = Timeline(
            time=np.asarray(sample_times),
            queued_tasks=np.asarray(sample_queued, dtype=np.int64),
            busy_servers=np.asarray(sample_busy, dtype=np.int64),
        )

    mean_service = float(
        np.mean([server_cdfs[sid].mean() for sid in range(n)])
    )
    if config.workload is not None:
        offered = config.workload.load(n)
    else:
        span = float(arrival.max() - arrival.min())
        offered = (
            float(fanout.sum()) * mean_service / (n * span) if span > 0 else 0.0
        )

    if tracing:
        rec.set_gauge("utilization",
                      busy_total / (n * now) if now > 0 else 0.0)
        rec.set_gauge("deadline_miss_ratio",
                      tasks_missed / tasks_total if tasks_total else 0.0)
        rec.set_gauge("duration_ms", now)

    return SimulationResult(
        policy_name=policy.name,
        n_servers=n,
        seed=config.seed,
        offered_load=offered,
        classes=tuple(classes),
        class_index=class_index,
        fanout=fanout,
        arrival=arrival,
        latency=latency,
        rejected=rejected,
        measured=measured,
        tasks_total=tasks_total,
        tasks_missed_deadline=tasks_missed,
        busy_time_total=busy_total,
        duration=now,
        mean_service_ms=mean_service,
        timeline=timeline,
        obs=rec if tracing else None,
        failed=failed_q,
        tasks_failed=tasks_failed,
        tasks_retried=tasks_retried,
        tasks_hedged=tasks_hedged,
        tasks_cancelled=tasks_cancelled,
        server_failures=server_failures,
        coverage=coverage_q,
        degraded=degraded_q,
        degraded_queries=ctrl.degraded_queries if ctrl is not None else 0,
        shed_tasks=ctrl.shed_tasks if ctrl is not None else 0,
        breaker_trips=ctrl.breaker_trips if ctrl is not None else 0,
        cdf_rebootstraps=ctrl.cdf_rebootstraps if ctrl is not None else 0,
        overload=ctrl,
        hedges_suppressed=rc.hedges_suppressed if rc is not None else 0,
        replicas=rc,
    )


def _fault_loop_pause(is_fifo: bool, n: int, m: int, arrival, arrival_l,
                      fanout_l, deadline_l, key_l, transitions, stream0,
                      placement_rng, strag_eps, straggling: bool):
    """Specialized loop for mitigation-free plans (crashes *pause*).

    No retry and no hedge means copies, cancellations, timers, and the
    slot records all vanish: a task is just its ``(qidx, deadline)``
    pair, ``busy[sid]``/``paused[sid]`` hold the query index directly,
    and the queues inline to a deque (FIFO) or a raw
    ``(key, seq, qidx, deadline)`` heap (EDF family).  Event order,
    RNG consumption, and float accumulation exactly mirror the generic
    loop (the golden corpus pins this bit-for-bit).
    """
    heappush, heappop = heapq.heappush, heapq.heappop
    infinity = float("inf")

    queues = ([deque() for _ in range(n)] if is_fifo
              else [[] for _ in range(n)])
    qseq = [0] * n
    busy = [-1] * n
    paused = [-1] * n
    down = [False] * n
    epoch = [0] * n
    service_start = [0.0] * n
    all_servers = tuple(range(n))
    pr_integers = placement_rng.integers
    pr_choice = placement_rng.choice
    drain = stream0.drain_block
    sbuf: List[float] = []
    sidx = 0
    slen = 0

    remaining = list(fanout_l)
    comp_idx: List[int] = []
    comp_time: List[float] = []

    heap: List[Tuple] = []
    seq = 0
    for t, sid, kind in transitions:
        # transitions() is pre-sorted and seq is monotone, so appends
        # build an already-valid min-heap.
        heap.append((t, _R_TRANSITION, seq,
                     _E_FAIL if kind == FAIL else _E_RECOVER, sid))
        seq += 1

    busy_total = 0.0
    tasks_total = 0
    tasks_missed = 0
    server_failures = 0
    now = 0.0
    qi = 0

    def start_service(sid: int, qidx: int, deadline: float,
                      restart: bool) -> None:
        nonlocal seq, tasks_total, tasks_missed, sbuf, sidx, slen
        busy[sid] = qidx
        service_start[sid] = now
        if sidx == slen:
            sbuf = drain()
            slen = len(sbuf)
            sidx = 0
        duration = sbuf[sidx]
        sidx += 1
        if straggling:
            eps = strag_eps[sid]
            if eps:
                factor = 1.0
                for start_ms, end_ms, fac in eps:
                    if start_ms <= now < end_ms:
                        factor *= fac
                duration *= factor
        if not restart:
            tasks_total += 1
            if now > deadline:
                tasks_missed += 1
        heappush(heap, (now + duration, _R_COMPLETE, seq, _E_COMPLETE,
                        sid, qidx, duration, epoch[sid]))
        seq += 1

    def start_next(sid: int) -> None:
        queue = queues[sid]
        if queue:
            if is_fifo:
                qidx, deadline = queue.popleft()
            else:
                entry = heappop(queue)
                qidx = entry[2]
                deadline = entry[3]
            start_service(sid, qidx, deadline, False)

    while qi < m or heap:
        next_arrival = arrival_l[qi] if qi < m else infinity

        while heap:
            head = heap[0]
            now = head[0]
            if now > next_arrival:
                break
            heappop(heap)
            code = head[3]

            if code == _E_COMPLETE:
                sid = head[4]
                if head[7] != epoch[sid]:
                    continue  # stale: the server crashed mid-service
                busy_total += head[6]
                busy[sid] = -1
                qidx = head[5]
                left = remaining[qidx] - 1
                remaining[qidx] = left
                if not left:
                    comp_idx.append(qidx)
                    comp_time.append(now)
                if not down[sid]:
                    start_next(sid)

            elif code == _E_FAIL:
                sid = head[4]
                server_failures += 1
                down[sid] = True
                epoch[sid] += 1
                qidx = busy[sid]
                if qidx >= 0:
                    busy_total += now - service_start[sid]
                    busy[sid] = -1
                    paused[sid] = qidx

            else:                                # ----- _E_RECOVER
                sid = head[4]
                down[sid] = False
                qidx = paused[sid]
                if qidx >= 0:
                    paused[sid] = -1
                    start_service(sid, qidx, 0.0, True)
                else:
                    start_next(sid)

        if qi >= m:
            break  # heap fully drained, no arrivals left

        # ----- query arrival -------------------------------------------
        now = next_arrival
        qidx = qi
        qi += 1
        k = fanout_l[qidx]
        deadline = deadline_l[qidx]
        if k == n:
            servers = all_servers
        elif k == 1:
            servers = (int(pr_integers(n)),)
        else:
            servers = pr_choice(n, size=k, replace=False).tolist()
        if is_fifo:
            for sid in servers:
                if busy[sid] >= 0 or down[sid]:
                    queues[sid].append((qidx, deadline))
                else:
                    start_service(sid, qidx, deadline, False)
        else:
            keyval = key_l[qidx]
            for sid in servers:
                if busy[sid] >= 0 or down[sid]:
                    heappush(queues[sid],
                             (keyval, qseq[sid], qidx, deadline))
                    qseq[sid] += 1
                else:
                    start_service(sid, qidx, deadline, False)

    latency = np.full(m, np.nan)
    if comp_idx:
        idx = np.asarray(comp_idx, dtype=np.intp)
        latency[idx] = np.asarray(comp_time) - arrival[idx]
    failed_q = np.zeros(m, dtype=bool)
    return (latency, failed_q, busy_total, tasks_total, tasks_missed,
            0, 0, 0, 0, server_failures, now)


def _fault_loop_mitigated(is_fifo: bool, n: int, m: int, arrival, arrival_l,
                          fanout_l, deadline_l, key_l, transitions, stream0,
                          placement_rng, strag_eps, straggling: bool,
                          kill_mode: bool, retry, hedge, hedge_delay: float,
                          rc=None):
    """Specialized loop for retry/hedge plans.

    The generic loop's ``_Slot`` objects become plain lists
    (``[qidx, deadline, key, done, failed, attempts, hedges, pending,
    live]``), the policy queues inline to a deque + phantom set (FIFO)
    or a lazy-deletion heap of ``[key, seq, cid, slot, live]`` entries
    (EDF family, mirroring ``LazyEDFTaskQueue`` including its per-queue
    sequence counters), completions carry their slot in the heap
    payload (no copy-id indirection dict), and the base hedge delay —
    constant under the homogeneous single-stream precondition — is
    hoisted out of the timer path.  Every heap push happens at the same
    call site in the same order as the generic loop, so event order and
    RNG consumption are bit-identical.

    ``rc`` (a :class:`repro.replicas.ReplicaController` or None) steers
    retry/hedge target picks, gates duplicates, and — when its policy
    adapts the hedge delay — moves hedge timers from the pre-sorted
    ``hq`` deque onto the main heap, because a delay that changes
    between arms breaks the deque's sortedness invariant.
    """
    heappush, heappop = heapq.heappush, heapq.heappop
    infinity = float("inf")

    has_retry = retry is not None
    max_retries = retry.max_retries if has_retry else 0
    backoff_ms = retry.backoff_ms if has_retry else 0.0
    has_timeout = has_retry and retry.timeout_ms is not None
    timeout_ms = retry.timeout_ms if has_timeout else 0.0
    has_hedge = hedge is not None
    max_hedges = hedge.max_hedges if has_hedge else 0

    queues = ([deque() for _ in range(n)] if is_fifo
              else [[] for _ in range(n)])
    qseq = [0] * n
    qentry: Dict[int, List] = {}       # queued copy id -> its heap entry
    cancelled: set = set()             # FIFO phantoms (lazy removal)
    discard: set = set()               # in-service losers (result void)
    hedged: set = set()                # hedge-launched copy ids
    adaptive = rc is not None and rc.adaptive_delay
    scored_fanout = rc is not None and rc.scorer.scored_fanout

    # Timer calendars.  Both mitigation delays are constants and event
    # time is globally non-decreasing, so due times arrive pre-sorted —
    # plain deques replace ~2 heap operations per armed timer.  Entries
    # share the main heap's (time, rank, seq, code, ...) shape and the
    # global seq counter, so the three-way merge below reproduces the
    # single-heap processing order exactly.  An *adaptive* hedge delay
    # is not constant, so those timers go on the main heap instead.
    tq: deque = deque()                # queued-copy timeout timers
    hq: deque = deque()                # hedge timers (constant delay)

    busy = [-1] * n
    busy_slot: List[Optional[list]] = [None] * n
    paused_cid = [-1] * n
    paused_slot: List[Optional[list]] = [None] * n
    down = [False] * n
    up_l = [True] * n
    epoch = [0] * n
    depth = [0] * n
    service_start = [0.0] * n
    all_servers = tuple(range(n))
    pr_integers = placement_rng.integers
    pr_choice = placement_rng.choice
    drain = stream0.drain_block
    sbuf: List[float] = []
    sidx = 0
    slen = 0

    remaining = list(fanout_l)
    failed_l = [False] * m
    comp_idx: List[int] = []
    comp_time: List[float] = []

    heap: List[Tuple] = []
    seq = 0
    for t, sid, kind in transitions:
        heap.append((t, _R_TRANSITION, seq,
                     _E_FAIL if kind == FAIL else _E_RECOVER, sid))
        seq += 1

    busy_total = 0.0
    tasks_total = 0
    tasks_missed = 0
    tasks_failed = 0
    tasks_retried = 0
    tasks_hedged = 0
    tasks_cancelled = 0
    server_failures = 0
    next_cid = 0
    now = 0.0
    qi = 0

    def start_next(sid: int) -> None:
        nonlocal seq, tasks_total, tasks_missed, sbuf, sidx, slen
        queue = queues[sid]
        if is_fifo:
            while True:
                if not queue:
                    return
                cid, slot = queue.popleft()
                depth[sid] -= 1
                if cid not in cancelled:
                    break
                cancelled.discard(cid)
        else:
            popped = 0
            entry = None
            while queue:
                entry = heappop(queue)
                popped += 1
                if entry[4]:
                    break
                entry = None
            depth[sid] -= popped
            if entry is None:
                return
            cid = entry[2]
            slot = entry[3]
            del qentry[cid]
        # ----- service start (dequeue path, inlined) ------------------
        busy[sid] = cid
        busy_slot[sid] = slot
        depth[sid] += 1
        service_start[sid] = now
        if sidx == slen:
            sbuf = drain()
            slen = len(sbuf)
            sidx = 0
        duration = sbuf[sidx]
        sidx += 1
        if straggling:
            eps = strag_eps[sid]
            if eps:
                factor = 1.0
                for start_ms, end_ms, fac in eps:
                    if start_ms <= now < end_ms:
                        factor *= fac
                duration *= factor
        tasks_total += 1
        if now > slot[1]:
            tasks_missed += 1
        if rc is not None:
            rc.on_task_start(sid, slot[1] - now)
        heappush(heap, (now + duration, _R_COMPLETE, seq, _E_COMPLETE,
                        sid, cid, duration, epoch[sid], slot))
        seq += 1

    def enqueue_copy(sid: int, cid: int, slot: list) -> bool:
        """Queue or start a fresh copy.  Returns True when it queued —
        a copy that enters service immediately can never time out, so
        callers skip arming its (provably no-op) timeout timer."""
        nonlocal seq, tasks_total, tasks_missed, sbuf, sidx, slen
        if busy[sid] >= 0 or down[sid]:
            if is_fifo:
                queues[sid].append((cid, slot))
            else:
                entry = [slot[2], qseq[sid], cid, slot, True]
                qseq[sid] += 1
                qentry[cid] = entry
                heappush(queues[sid], entry)
            depth[sid] += 1
            return True
        # ----- immediate service start (inlined) ----------------------
        busy[sid] = cid
        busy_slot[sid] = slot
        depth[sid] += 1
        service_start[sid] = now
        if sidx == slen:
            sbuf = drain()
            slen = len(sbuf)
            sidx = 0
        duration = sbuf[sidx]
        sidx += 1
        if straggling:
            eps = strag_eps[sid]
            if eps:
                factor = 1.0
                for start_ms, end_ms, fac in eps:
                    if start_ms <= now < end_ms:
                        factor *= fac
                duration *= factor
        tasks_total += 1
        if now > slot[1]:
            tasks_missed += 1
        if rc is not None:
            rc.on_task_start(sid, slot[1] - now)
        heappush(heap, (now + duration, _R_COMPLETE, seq, _E_COMPLETE,
                        sid, cid, duration, epoch[sid], slot))
        seq += 1
        return False

    def pick(exclude) -> int:
        # pick_server inlined: least-loaded up server, ties -> lowest id.
        best = -1
        best_depth = -1
        if exclude:
            for sid in all_servers:
                if not up_l[sid] or sid in exclude:
                    continue
                if best < 0 or depth[sid] < best_depth:
                    best = sid
                    best_depth = depth[sid]
        else:
            for sid in all_servers:
                if up_l[sid] and (best < 0 or depth[sid] < best_depth):
                    best = sid
                    best_depth = depth[sid]
        return best

    def slot_fail(slot: list) -> None:
        nonlocal tasks_failed
        slot[4] = True
        tasks_failed += 1
        if rc is not None and slot[6] > 0:
            rc.record_hedge_outcome(False, now)
        qidx = slot[0]
        failed_l[qidx] = True
        remaining[qidx] -= 1

    def schedule_requeue(slot: list) -> None:
        nonlocal seq
        if not has_retry or slot[5] >= max_retries:
            slot_fail(slot)
            return
        slot[5] += 1
        slot[7] += 1
        heappush(heap, (now + backoff_ms * slot[5], _R_RETRY, seq,
                        _E_REQUEUE, slot))
        seq += 1

    while qi < m or heap or tq or hq:
        next_arrival = arrival_l[qi] if qi < m else infinity

        # Three-way merge: main heap + the two timer deques.  Entries
        # share one (time, rank, seq, ...) ordering, so picking the
        # smallest head replays the single-heap order exactly.
        while True:
            # Purge dead timer heads before the merge: deadness is
            # monotone (done/failed stick, hedge counts only grow), so a
            # timer that would no-op at dispatch no-ops forever and can
            # be dropped without paying the full dispatch ceremony.
            while hq:
                entry = hq[0]
                slot = entry[4]
                if slot[3] or slot[4] or slot[6] >= max_hedges:
                    hq.popleft()
                else:
                    break
            while tq:
                entry = tq[0]
                slot = entry[5]
                if slot[3] or slot[4]:
                    tq.popleft()
                else:
                    break
            if heap:
                head = heap[0]
                src = 0
            else:
                head = None
                src = -1
            if tq:
                entry = tq[0]
                if head is None or entry < head:
                    head = entry
                    src = 1
            if hq:
                entry = hq[0]
                if head is None or entry < head:
                    head = entry
                    src = 2
            if head is None:
                break
            now = head[0]
            if now > next_arrival:
                break
            if src == 0:
                heappop(heap)
            elif src == 1:
                tq.popleft()
            else:
                hq.popleft()
            code = head[3]

            if code == _E_COMPLETE:
                sid = head[4]
                if head[7] != epoch[sid]:
                    continue  # stale: the server crashed mid-service
                cid = head[5]
                busy_total += head[6]
                busy[sid] = -1
                depth[sid] -= 1
                if cid in discard:
                    discard.discard(cid)
                else:
                    slot = head[8]
                    slot[3] = True
                    live = slot[8]
                    live.pop(cid, None)
                    if rc is not None:
                        rc.on_task_complete(sid, head[6])
                        if slot[6] > 0:
                            rc.record_hedge_outcome(cid in hedged, now)
                    if live:
                        for other_cid, other_sid in live.items():
                            if busy[other_sid] == other_cid:
                                discard.add(other_cid)
                            elif paused_cid[other_sid] == other_cid:
                                # A paused loser evaporates: nothing to
                                # restart at its server's recovery.
                                paused_cid[other_sid] = -1
                                paused_slot[other_sid] = None
                            elif is_fifo:
                                cancelled.add(other_cid)
                            else:
                                entry = qentry.pop(other_cid)
                                entry[4] = False
                            tasks_cancelled += 1
                        live.clear()
                    qidx = slot[0]
                    left = remaining[qidx] - 1
                    remaining[qidx] = left
                    if not left and not failed_l[qidx]:
                        comp_idx.append(qidx)
                        comp_time.append(now)
                if down[sid]:
                    continue
                # ----- start_next inlined (hot path) -------------------
                queue = queues[sid]
                if is_fifo:
                    cid = -1
                    while queue:
                        cid, slot = queue.popleft()
                        depth[sid] -= 1
                        if cid not in cancelled:
                            break
                        cancelled.discard(cid)
                        cid = -1
                    if cid < 0:
                        continue
                else:
                    popped = 0
                    qitem = None
                    while queue:
                        qitem = heappop(queue)
                        popped += 1
                        if qitem[4]:
                            break
                        qitem = None
                    depth[sid] -= popped
                    if qitem is None:
                        continue
                    cid = qitem[2]
                    slot = qitem[3]
                    del qentry[cid]
                busy[sid] = cid
                busy_slot[sid] = slot
                depth[sid] += 1
                service_start[sid] = now
                if sidx == slen:
                    sbuf = drain()
                    slen = len(sbuf)
                    sidx = 0
                duration = sbuf[sidx]
                sidx += 1
                if straggling:
                    eps = strag_eps[sid]
                    if eps:
                        factor = 1.0
                        for start_ms, end_ms, fac in eps:
                            if start_ms <= now < end_ms:
                                factor *= fac
                        duration *= factor
                tasks_total += 1
                if now > slot[1]:
                    tasks_missed += 1
                if rc is not None:
                    rc.on_task_start(sid, slot[1] - now)
                heappush(heap, (now + duration, _R_COMPLETE, seq,
                                _E_COMPLETE, sid, cid, duration,
                                epoch[sid], slot))
                seq += 1

            elif code == _E_HEDGE:
                slot = head[4]
                if slot[3] or slot[4] or slot[6] >= max_hedges:
                    continue
                live = slot[8]
                if rc is not None:
                    # Budget/pressure/score gating + scored pick; a
                    # suppressed hedge re-arms without consuming a
                    # max_hedges slot.
                    target = rc.hedge_target(depth, up_l, live.values(),
                                             now, slot[0])
                else:
                    target = pick(live.values())
                if target >= 0:
                    slot[6] += 1
                    tasks_hedged += 1
                    cid = next_cid
                    next_cid += 1
                    live[cid] = target
                    if rc is not None:
                        hedged.add(cid)
                    if enqueue_copy(target, cid, slot) and has_timeout:
                        tq.append((now + timeout_ms, _R_RETRY, seq,
                                   _E_TIMEOUT, cid, slot))
                        seq += 1
                    if slot[6] >= max_hedges:
                        continue
                if adaptive:
                    heappush(heap, (now + hedge_delay * rc.delay_scale(),
                                    _R_HEDGE, seq, _E_HEDGE, slot))
                else:
                    hq.append((now + hedge_delay, _R_HEDGE, seq,
                               _E_HEDGE, slot))
                seq += 1

            elif code == _E_REQUEUE:
                slot = head[4]
                slot[7] -= 1
                if slot[3] or slot[4]:
                    continue
                live = slot[8]
                if rc is not None:
                    target = rc.pick(depth, up_l, live.values())
                else:
                    target = pick(live.values())
                if target < 0:
                    slot_fail(slot)
                    continue
                tasks_retried += 1
                if rc is not None:
                    rc.record_launch()
                cid = next_cid
                next_cid += 1
                live[cid] = target
                if enqueue_copy(target, cid, slot) and has_timeout:
                    tq.append((now + timeout_ms, _R_RETRY, seq,
                               _E_TIMEOUT, cid, slot))
                    seq += 1

            elif code == _E_TIMEOUT:
                cid = head[4]
                slot = head[5]
                if slot[3] or slot[4]:
                    continue
                live = slot[8]
                sid = live.get(cid, -1)
                if sid < 0 or busy[sid] == cid:
                    continue  # no longer queued / in (or past) service
                if slot[5] >= max_retries:
                    continue  # budget exhausted: leave it queued
                del live[cid]
                if is_fifo:
                    cancelled.add(cid)
                else:
                    entry = qentry.pop(cid)
                    entry[4] = False
                tasks_cancelled += 1
                schedule_requeue(slot)

            elif code == _E_FAIL:
                sid = head[4]
                server_failures += 1
                down[sid] = True
                up_l[sid] = False
                epoch[sid] += 1
                victims: List[Tuple[int, list]] = []
                cid = busy[sid]
                if cid >= 0:
                    busy_total += now - service_start[sid]
                    busy[sid] = -1
                    depth[sid] -= 1
                    if cid in discard:
                        discard.discard(cid)
                    elif kill_mode:
                        victims.append((cid, busy_slot[sid]))
                    else:
                        paused_cid[sid] = cid
                        paused_slot[sid] = busy_slot[sid]
                if kill_mode:
                    queue = queues[sid]
                    if is_fifo:
                        while queue:
                            vcid, vslot = queue.popleft()
                            depth[sid] -= 1
                            if vcid in cancelled:
                                cancelled.discard(vcid)
                                continue
                            victims.append((vcid, vslot))
                    else:
                        popped = 0
                        while queue:
                            entry = heappop(queue)
                            popped += 1
                            if entry[4]:
                                del qentry[entry[2]]
                                victims.append((entry[2], entry[3]))
                        depth[sid] -= popped
                    for vcid, vslot in victims:
                        if vslot[3] or vslot[4]:
                            continue
                        vlive = vslot[8]
                        vlive.pop(vcid, None)
                        if vlive or vslot[7]:
                            tasks_cancelled += 1
                            continue
                        schedule_requeue(vslot)

            else:                                # ----- _E_RECOVER
                sid = head[4]
                down[sid] = False
                up_l[sid] = True
                cid = paused_cid[sid]
                if cid >= 0:
                    paused_cid[sid] = -1
                    slot = paused_slot[sid]
                    paused_slot[sid] = None
                    # ----- restart paused task (inlined, no recount) ---
                    busy[sid] = cid
                    busy_slot[sid] = slot
                    depth[sid] += 1
                    service_start[sid] = now
                    if sidx == slen:
                        sbuf = drain()
                        slen = len(sbuf)
                        sidx = 0
                    duration = sbuf[sidx]
                    sidx += 1
                    if straggling:
                        eps = strag_eps[sid]
                        if eps:
                            factor = 1.0
                            for start_ms, end_ms, fac in eps:
                                if start_ms <= now < end_ms:
                                    factor *= fac
                            duration *= factor
                    heappush(heap, (now + duration, _R_COMPLETE, seq,
                                    _E_COMPLETE, sid, cid, duration,
                                    epoch[sid], slot))
                    seq += 1
                else:
                    start_next(sid)

        if qi >= m:
            break  # heap fully drained, no arrivals left

        # ----- query arrival -------------------------------------------
        now = next_arrival
        qidx = qi
        qi += 1
        k = fanout_l[qidx]
        deadline = deadline_l[qidx]
        keyval = key_l[qidx]
        if k == n:
            servers = all_servers
        elif k == 1:
            servers = (int(pr_integers(n)),)
        else:
            servers = pr_choice(n, size=k, replace=False).tolist()
        if scored_fanout:
            # The nominal uniform draw above still consumed the RNG, so
            # downstream streams are unperturbed; the slots just go to
            # the k best-scored servers instead.
            servers = rc.place_fanout(k, depth)
        for sid in servers:
            slot = [qidx, deadline, keyval, False, False, 0, 0, 0, {}]
            if kill_mode and down[sid]:
                # Dispatch-time redirect away from a down server (free:
                # no retry budget consumed).
                target = pick(())
                if target < 0:
                    slot_fail(slot)
                    continue
                tasks_retried += 1
                sid = target
            cid = next_cid
            next_cid += 1
            slot[8][cid] = sid
            if rc is not None:
                rc.record_launch()
            if enqueue_copy(sid, cid, slot) and has_timeout:
                tq.append((now + timeout_ms, _R_RETRY, seq,
                           _E_TIMEOUT, cid, slot))
                seq += 1
            if has_hedge:
                if adaptive:
                    heappush(heap, (now + hedge_delay * rc.delay_scale(),
                                    _R_HEDGE, seq, _E_HEDGE, slot))
                else:
                    hq.append((now + hedge_delay, _R_HEDGE, seq,
                               _E_HEDGE, slot))
                seq += 1

    latency = np.full(m, np.nan)
    if comp_idx:
        idx = np.asarray(comp_idx, dtype=np.intp)
        latency[idx] = np.asarray(comp_time) - arrival[idx]
    failed_q = np.asarray(failed_l, dtype=bool)
    return (latency, failed_q, busy_total, tasks_total, tasks_missed,
            tasks_failed, tasks_retried, tasks_hedged, tasks_cancelled,
            server_failures, now)


def simulate_with_faults(config: ClusterConfig) -> SimulationResult:
    """Run one fault-injected simulation.

    Same statistics contract as the no-fault loop, plus fault outcome
    counters and the per-query ``failed`` mask (failed queries keep
    ``latency`` = NaN and are excluded from latency statistics).
    """
    from repro.cluster.simulation import (
        _budget_array,
        _prepare_query_arrays,
        _prepare_specs,
        _server_streams,
    )

    plan = config.faults
    overload_policy = config.overload
    overload_active = overload_policy is not None and overload_policy.active
    replica_policy = config.replicas
    replicas_active = replica_policy is not None and replica_policy.active
    assert ((plan is not None and plan.active) or overload_active
            or replicas_active)
    if plan is None:
        # Overload/replica-only run: an empty (inactive) plan keeps the
        # fault machinery inert without special-casing the loop.
        plan = FaultPlan()
    policy = config.resolve_policy()
    root_rng = np.random.default_rng(config.seed)
    spec_rng, placement_rng, service_rng = root_rng.spawn(3)

    n = config.n_servers
    server_cdfs = config.resolve_server_cdfs()
    server_stream = _server_streams(config, server_cdfs, service_rng)

    estimator = config.estimator
    if estimator is None:
        estimator = DeadlineEstimator(dict(server_cdfs))

    rec = config.recorder
    tracing = rec is not None and rec.enabled
    admission = config.admission
    placement = config.placement

    # Array-form spec preparation whenever no caller-supplied spec list
    # or placement hook needs the QuerySpec objects themselves — the
    # same RNG variates, none of the per-query object churn.
    specs = None
    servers_list: Optional[List] = None
    if config.specs is None and placement is None:
        classes, class_index, fanout, arrival = _prepare_query_arrays(
            config, spec_rng)
    else:
        specs, classes, class_index, fanout, arrival = _prepare_specs(
            config, spec_rng)
        servers_list = [spec.servers for spec in specs]
    m = len(class_index)

    # ------------------------------------------------------------------
    # Fault machinery.
    # ------------------------------------------------------------------
    materialized = plan.materialize(n, fault_horizon(float(arrival[-1])))
    kill_mode = plan.kill_mode
    retry = plan.retry
    hedge = plan.hedge
    straggling = bool(plan.stragglers)
    straggler_factor = materialized.straggler_factor

    ctrl = None
    if overload_active:
        ctrl = overload_policy.build(n, estimator, config.recorder)
    rc = None
    if replicas_active:
        rc = replica_policy.build(n, config.recorder)
    perturbations = tuple(config.perturbations)

    online = estimator.online_enabled
    # A drift re-bootstrap can swap CDFs mid-run, and an overload
    # controller stamps its own deadlines anyway — skip the
    # precomputed-budget fast path whenever one is active.
    homogeneous_fast = (estimator.homogeneous and not online
                        and placement is None and ctrl is None)
    query_budget: List[float] = []
    if homogeneous_fast:
        query_budget = _budget_array(
            estimator, classes, class_index, fanout, n, servers_list)
    use_budget_array = bool(query_budget)

    sample_interval = config.timeline_interval_ms
    single_stream = len({id(stream) for stream in server_stream}) == 1

    # The specialized loops cover the common benchmarking shape —
    # untraced, no overload controller, no admission, default placement,
    # hoisted budgets, one shared service stream, no sampling, no
    # perturbations, and a policy whose queue inlines.  Everything else
    # runs the generic loop below, unchanged.  A replica controller
    # rides along in the mitigated loop (its timer lanes grew the
    # hooks) but not the pause loop, which has no retry/hedge machinery
    # for it to steer.
    fast = (not tracing and ctrl is None and admission is None
            and placement is None and config.specs is None
            and use_budget_array and single_stream
            and sample_interval is None and not perturbations
            and (rc is None or retry is not None or hedge is not None)
            and type(policy) in (FIFOPolicy, TEDFPolicy, TFEDFPolicy))

    if fast:
        is_fifo = type(policy) is FIFOPolicy
        arrival_l = arrival.tolist()
        fanout_l = fanout.tolist()
        # Vectorized deadline/key precomputation: elementwise float64
        # adds, bit-identical to the scalar ``now + budget`` stamps.
        deadline_l = (arrival + np.asarray(query_budget)).tolist()
        if type(policy) is TEDFPolicy:
            slo_arr = np.asarray([cls.slo_ms for cls in classes])
            key_l = (arrival + slo_arr[class_index]).tolist()
        else:
            # TF-EDFQ orders by the stamped deadline; FIFO ignores keys.
            key_l = deadline_l
        transitions = materialized.transitions()
        strag_eps = [materialized.straggler_episodes(sid)
                     for sid in range(n)]
        stream0 = server_stream[0]
        if retry is None and hedge is None:
            (latency, failed_q, busy_total, tasks_total, tasks_missed,
             tasks_failed, tasks_retried, tasks_hedged, tasks_cancelled,
             server_failures, now) = _fault_loop_pause(
                is_fifo, n, m, arrival, arrival_l, fanout_l, deadline_l,
                key_l, transitions, stream0, placement_rng, strag_eps,
                straggling)
        else:
            # Homogeneous single stream => every server shares one CDF
            # object, so the per-slot base hedge delay is one constant.
            # Routed through the estimator's quantile memo so a drift
            # re-bootstrap would invalidate it (here the estimator never
            # re-bootstraps — ctrl is None — so it stays a constant).
            hedge_delay = (hedge.delay_via(estimator, 0)
                           if hedge is not None else 0.0)
            (latency, failed_q, busy_total, tasks_total, tasks_missed,
             tasks_failed, tasks_retried, tasks_hedged, tasks_cancelled,
             server_failures, now) = _fault_loop_mitigated(
                is_fifo, n, m, arrival, arrival_l, fanout_l, deadline_l,
                key_l, transitions, stream0, placement_rng, strag_eps,
                straggling, kill_mode, retry, hedge, hedge_delay, rc)
        rejected = np.zeros(m, dtype=bool)
        return _finalize_faults(
            config, policy, n, server_cdfs, classes, class_index, fanout,
            arrival, latency, rejected, failed_q, busy_total, tasks_total,
            tasks_missed, now, tasks_failed, tasks_retried, tasks_hedged,
            tasks_cancelled, server_failures, [], [], [], None, None,
            None, rc, rec, tracing)

    # Hot-loop mirrors: plain Python lists for the per-event scalar
    # reads/writes (list indexing beats numpy scalar indexing by ~5x);
    # the numpy originals stay around for the vectorized wrap-up.
    arrival_l = arrival.tolist()
    fanout_l = fanout.tolist()
    class_index_l = class_index.tolist()
    remaining = fanout_l.copy()
    latency = np.full(m, np.nan)
    rejected = np.zeros(m, dtype=bool)
    failed_q = np.zeros(m, dtype=bool)
    coverage_q: Optional[np.ndarray] = None
    degraded_q: Optional[np.ndarray] = None
    if overload_active:
        coverage_q = np.full(m, np.nan)
        degraded_q = np.zeros(m, dtype=bool)

    # ------------------------------------------------------------------
    # Server state.  ``busy[sid]`` holds the in-service copy id or -1;
    # ``epoch`` invalidates completions scheduled before a crash.
    # ------------------------------------------------------------------
    queues = [policy.create_queue() for _ in range(n)]
    busy = [-1] * n
    down = [False] * n
    epoch = [0] * n
    service_start = [0.0] * n
    paused: List[Optional[int]] = [None] * n
    all_servers = tuple(range(n))

    # Incrementally maintained load signals (the retry/hedge target
    # rule and the overload router read them on every decision;
    # rebuilding n-element lists per event dominated those paths).
    # ``depth[sid]`` = len(queues[sid]) + (1 if busy) with phantoms
    # included, ``up_l[sid]`` mirrors ``not down[sid]``.
    depth = [0] * n
    up_l = [True] * n

    copy_slot: Dict[int, _Slot] = {}   # copy id -> its slot
    started: set = set()               # copies that entered service once
    cancelled: set = set()             # queued phantoms (lazy removal)
    discard: set = set()               # in-service losers (result void)
    hedged: set = set()                # hedge-launched copy ids
    scored_fanout = rc is not None and rc.scorer.scored_fanout
    next_cid = 0
    # Queues advertising supports_cancel (LazyEDFTaskQueue) take
    # cancellations in-place; ``qitem`` maps a queued copy to the exact
    # entry object pushed so cancel-by-identity can find it.  Other
    # queue types fall back to the ``cancelled`` phantom set.
    q_cancels = bool(queues) and getattr(queues[0], "supports_cancel", False)
    qitem: Dict[int, Tuple[int, int]] = {}

    # Completions deferred for one vectorized latency stamp at the end
    # (tracing runs stamp inline — the recorder needs the value live).
    comp_idx: List[int] = []
    comp_time: List[float] = []

    heap: List[Tuple] = []  # (time, rank, seq, kind, payload...)
    seq = 0
    push, pop = heapq.heappush, heapq.heappop
    for time, sid, kind in materialized.transitions():
        push(heap, (time, _R_TRANSITION, seq,
                    "F" if kind == FAIL else "R", sid))
        seq += 1

    placement_wants_depths = bool(
        placement is not None and getattr(placement, "needs_queue_depths",
                                          False)
    )

    busy_total = 0.0
    tasks_total = 0
    tasks_missed = 0
    tasks_failed = 0
    tasks_retried = 0
    tasks_hedged = 0
    tasks_cancelled = 0
    server_failures = 0
    now = 0.0
    qi = 0
    infinity = float("inf")

    next_sample = sample_interval if sample_interval is not None else infinity
    sample_times: List[float] = []
    sample_queued: List[int] = []
    sample_busy: List[int] = []
    queued_tasks = 0
    busy_servers = 0

    # ------------------------------------------------------------------
    # Helpers (closures over the state above).
    # ------------------------------------------------------------------
    def sample_duration(sid: int) -> float:
        duration = server_stream[sid].next()
        if straggling:
            duration *= straggler_factor(sid, now)
        for perturbation in perturbations:
            if perturbation.applies(sid, now):
                duration *= perturbation.factor
        return duration

    def start_service(sid: int, cid: int, restart: bool = False) -> None:
        nonlocal seq, tasks_total, tasks_missed, busy_servers
        slot = copy_slot[cid]
        busy[sid] = cid
        busy_servers += 1
        depth[sid] += 1
        service_start[sid] = now
        duration = sample_duration(sid)
        if not restart:
            started.add(cid)
            tasks_total += 1
            missed = now > slot.deadline
            if missed:
                tasks_missed += 1
            if admission is not None:
                admission.record_task(missed, now)
            if tracing:
                rec.inc("tasks_dequeued")
                rec.emit(TASK_DEQUEUE, now, server_id=sid,
                         query_id=slot.qidx,
                         class_name=classes[class_index[slot.qidx]].name,
                         fanout=int(fanout[slot.qidx]),
                         deadline=slot.deadline, slack=slot.deadline - now,
                         extra={"slot": slot.slot})
                if missed:
                    rec.inc("deadline_misses")
                    rec.emit(DEADLINE_MISS, now, server_id=sid,
                             query_id=slot.qidx, deadline=slot.deadline,
                             slack=slot.deadline - now)
            if ctrl is not None:
                ctrl.record_task(sid, slot.qidx, missed,
                                 slot.deadline - now, now)
            if rc is not None:
                rc.on_task_start(sid, slot.deadline - now)
        push(heap, (now + duration, _R_COMPLETE, seq, "C", sid, cid,
                    duration, epoch[sid]))
        seq += 1

    def start_next(sid: int) -> bool:
        """Pull the next live queued copy, skipping phantoms."""
        queue = queues[sid]
        nonlocal queued_tasks
        if q_cancels:
            item, popped = queue.pop_live()
            queued_tasks -= popped
            depth[sid] -= popped
            if item is None:
                return False
            del qitem[item[1]]
            start_service(sid, item[1])
            return True
        while len(queue) > 0:
            qidx, cid = queue.pop()
            queued_tasks -= 1
            depth[sid] -= 1
            if cid in cancelled:
                cancelled.discard(cid)
                continue
            start_service(sid, cid)
            return True
        return False

    def enqueue_copy(sid: int, cid: int) -> None:
        nonlocal queued_tasks
        slot = copy_slot[cid]
        if busy[sid] >= 0 or down[sid]:
            item = (slot.qidx, cid)
            queues[sid].push(item, slot.key)
            if q_cancels:
                qitem[cid] = item
            queued_tasks += 1
            depth[sid] += 1
            if tracing:
                rec.emit(TASK_ENQUEUE, now, server_id=sid,
                         query_id=slot.qidx, deadline=slot.deadline,
                         slack=slot.deadline - now,
                         extra={"queue_len": len(queues[sid])})
        else:
            start_service(sid, cid)

    def new_copy(slot: _Slot, sid: int) -> int:
        nonlocal next_cid
        cid = next_cid
        next_cid += 1
        copy_slot[cid] = slot
        slot.live[cid] = sid
        return cid

    def arm_timeout(cid: int) -> None:
        nonlocal seq
        if retry is not None and retry.timeout_ms is not None:
            push(heap, (now + retry.timeout_ms, _R_RETRY, seq, "T", cid))
            seq += 1

    def arm_hedge(slot: _Slot) -> None:
        nonlocal seq
        if hedge is not None:
            # Base delay via the estimator's versioned quantile memo —
            # a drift re-bootstrap invalidates the cached inversion, so
            # post-rebootstrap hedges fire on the refreshed tail.  The
            # timer payload carries the *base*: an adaptive controller
            # rescales it at every (re-)arm.
            base = hedge.delay_via(estimator, slot.primary_sid)
            delay = rc.hedge_delay(base) if rc is not None else base
            push(heap, (now + delay, _R_HEDGE, seq, "H", slot, base))
            seq += 1

    def pick_mitigation(exclude, allow_fallback: bool):
        """Least-loaded/scored pick that respects open breakers.

        With an overload controller the candidate set first drops
        servers whose breaker refuses work; a *retry* with no
        breaker-permitted server left falls back to the unfiltered up
        set (failing the slot outright would turn a brown-out into an
        outage), while a hedge (duplicate work) simply stays unsent.
        Returns ``(target, fellback)`` so the trace can mark retries
        that knowingly overrode breaker state.
        """
        eff = ctrl.mitigation_up(up_l, now) if ctrl is not None else up_l
        fellback = False
        if rc is not None:
            target = rc.pick(depth, eff, exclude)
            if target < 0 and allow_fallback and eff is not up_l:
                target = rc.pick(depth, up_l, exclude)
                fellback = target >= 0
        else:
            target = pick_server(depth, eff, exclude=exclude)
            if target < 0 and allow_fallback and eff is not up_l:
                target = pick_server(depth, up_l, exclude=exclude)
                fellback = target >= 0
        return target, fellback

    def slot_fail(slot: _Slot) -> None:
        nonlocal tasks_failed
        slot.failed = True
        tasks_failed += 1
        if rc is not None and slot.hedges > 0:
            rc.record_hedge_outcome(False, now)
        if tracing and not failed_q[slot.qidx]:
            # First slot loss: the query just became permanently failed.
            rec.inc("queries_timed_out")
            rec.emit(QUERY_TIMEOUT, now, query_id=slot.qidx,
                     class_name=classes[class_index[slot.qidx]].name,
                     fanout=int(fanout[slot.qidx]))
        failed_q[slot.qidx] = True
        remaining[slot.qidx] -= 1

    def schedule_requeue(slot: _Slot, reason: str) -> None:
        nonlocal seq
        if retry is None or slot.attempts >= retry.max_retries:
            slot_fail(slot)
            return
        slot.attempts += 1
        slot.pending += 1
        push(heap, (now + retry.backoff_ms * slot.attempts, _R_RETRY, seq,
                    "Q", slot, reason))
        seq += 1

    def handle_kill(cid: int) -> None:
        nonlocal tasks_cancelled
        slot = copy_slot[cid]
        if not slot.open:
            return
        sid = slot.live.pop(cid, -1)
        if slot.live or slot.pending:
            tasks_cancelled += 1
            if tracing:
                rec.emit(TASK_CANCEL, now, server_id=sid,
                         query_id=slot.qidx,
                         extra={"reason": "server_fail", "slot": slot.slot})
            return
        schedule_requeue(slot, "server_fail")

    # ------------------------------------------------------------------
    # Main loop: heap events (transitions, completions, timers) merge
    # with sorted arrivals; heap wins ties, matching the no-fault loop.
    # Between consecutive arrivals the heap is drained as one batched
    # run — same-timestamp events pop back-to-back with no per-event
    # re-evaluation of the arrival cursor — and completion latencies
    # are deferred to a single vectorized stamp at the end of the run
    # loop (processing order, and hence every RNG draw and float
    # accumulation, is unchanged; only the array writes are batched).
    # ------------------------------------------------------------------
    has_sampling = sample_interval is not None
    while qi < m or heap:
        next_arrival = arrival_l[qi] if qi < m else infinity

        # ----- heap drain: every event at or before the next arrival --
        while heap:
            head = heap[0]
            now = head[0]
            if now > next_arrival:
                break
            if has_sampling:
                while next_sample <= now:
                    sample_times.append(next_sample)
                    sample_queued.append(queued_tasks)
                    sample_busy.append(busy_servers)
                    next_sample += sample_interval
            pop(heap)
            kind = head[3]

            if kind == "F":                      # ----- server crash
                sid = head[4]
                server_failures += 1
                down[sid] = True
                up_l[sid] = False
                epoch[sid] += 1
                if tracing:
                    rec.emit(SERVER_FAIL, now, server_id=sid)
                if ctrl is not None:
                    ctrl.on_server_fail(sid, now)
                victims: List[int] = []
                cid = busy[sid]
                if cid >= 0:
                    busy_total += now - service_start[sid]
                    busy[sid] = -1
                    busy_servers -= 1
                    depth[sid] -= 1
                    if cid in discard:
                        discard.discard(cid)
                    elif kill_mode:
                        victims.append(cid)
                    else:
                        paused[sid] = cid
                if kill_mode:
                    queue = queues[sid]
                    if q_cancels:
                        while True:
                            item, popped = queue.pop_live()
                            queued_tasks -= popped
                            depth[sid] -= popped
                            if item is None:
                                break
                            del qitem[item[1]]
                            victims.append(item[1])
                    else:
                        while len(queue) > 0:
                            _, qcid = queue.pop()
                            queued_tasks -= 1
                            depth[sid] -= 1
                            if qcid in cancelled:
                                cancelled.discard(qcid)
                                continue
                            victims.append(qcid)
                    for victim in victims:
                        handle_kill(victim)

            elif kind == "R":                    # ----- server recovery
                sid = head[4]
                down[sid] = False
                up_l[sid] = True
                if tracing:
                    rec.emit(SERVER_RECOVER, now, server_id=sid)
                if ctrl is not None:
                    ctrl.on_server_recover(sid, now)
                if paused[sid] is not None:
                    cid, paused[sid] = paused[sid], None
                    start_service(sid, cid, restart=True)
                else:
                    start_next(sid)

            elif kind == "C":                    # ----- task completion
                sid = head[4]
                cid = head[5]
                if head[7] != epoch[sid]:
                    continue  # stale: the server crashed mid-service
                duration = head[6]
                busy_total += duration
                busy[sid] = -1
                busy_servers -= 1
                depth[sid] -= 1
                if cid in discard:
                    discard.discard(cid)
                else:
                    slot = copy_slot[cid]
                    slot.done = True
                    slot.live.pop(cid, None)
                    if online:
                        estimator.record(sid, duration)
                    if ctrl is not None:
                        ctrl.on_task_complete(sid, duration, now)
                    if rc is not None:
                        # Winners only: losers are cancelled/discarded
                        # and never reach the tail EWMA, matching the
                        # estimator/controller feed rule.
                        rc.on_task_complete(sid, duration)
                        if slot.hedges > 0:
                            rc.record_hedge_outcome(cid in hedged, now)
                    if tracing:
                        rec.emit(TASK_COMPLETE, now, server_id=sid,
                                 query_id=slot.qidx,
                                 class_name=classes[class_index[slot.qidx]].name,
                                 extra={"duration": duration,
                                        "slot": slot.slot})
                    for other_cid, other_sid in slot.live.items():
                        if busy[other_sid] == other_cid:
                            discard.add(other_cid)
                        elif paused[other_sid] == other_cid:
                            # A paused loser evaporates: nothing to
                            # restart at its server's recovery.
                            paused[other_sid] = None
                        elif q_cancels:
                            queues[other_sid].cancel(qitem.pop(other_cid))
                        else:
                            cancelled.add(other_cid)
                        tasks_cancelled += 1
                        if tracing:
                            rec.emit(TASK_CANCEL, now, server_id=other_sid,
                                     query_id=slot.qidx,
                                     extra={"reason": "hedge_lost",
                                            "slot": slot.slot})
                    slot.live.clear()
                    qidx = slot.qidx
                    remaining[qidx] -= 1
                    if remaining[qidx] == 0 and not failed_q[qidx]:
                        if tracing:
                            latency[qidx] = now - arrival_l[qidx]
                            rec.observe_latency(latency[qidx])
                            rec.inc("queries_completed")
                            rec.emit(QUERY_COMPLETE, now, query_id=qidx,
                                     class_name=classes[class_index[qidx]].name,
                                     fanout=int(fanout[qidx]),
                                     extra={"latency": latency[qidx]})
                        else:
                            comp_idx.append(qidx)
                            comp_time.append(now)
                if not down[sid]:
                    start_next(sid)

            elif kind == "Q":                    # ----- retry requeue
                slot, reason = head[4], head[5]
                slot.pending -= 1
                if not slot.open:
                    continue
                target, fellback = pick_mitigation(list(slot.live.values()),
                                                   allow_fallback=True)
                if target < 0:
                    slot_fail(slot)
                    continue
                tasks_retried += 1
                if rc is not None:
                    rc.record_launch()
                if tracing:
                    extra = {"attempt": slot.attempts,
                             "reason": reason, "slot": slot.slot}
                    if fellback:
                        extra["fallback"] = True
                    rec.emit(TASK_RETRY, now, server_id=target,
                             query_id=slot.qidx, deadline=slot.deadline,
                             extra=extra)
                cid = new_copy(slot, target)
                enqueue_copy(target, cid)
                arm_timeout(cid)

            elif kind == "T":                    # ----- queued-copy timeout
                cid = head[4]
                slot = copy_slot[cid]
                if not slot.open or cid not in slot.live:
                    continue
                if cid in started:
                    continue  # in (or past) service
                if slot.attempts >= retry.max_retries:
                    continue  # budget exhausted: leave it queued
                sid = slot.live.pop(cid)
                if q_cancels:
                    queues[sid].cancel(qitem.pop(cid))
                else:
                    cancelled.add(cid)
                tasks_cancelled += 1
                if tracing:
                    rec.emit(TASK_CANCEL, now, server_id=sid,
                             query_id=slot.qidx,
                             extra={"reason": "timeout", "slot": slot.slot})
                schedule_requeue(slot, "timeout")

            else:                                # ----- hedge timer ("H")
                slot, base = head[4], head[5]
                if not slot.open or slot.hedges >= hedge.max_hedges:
                    continue
                if rc is not None:
                    # The controller gates the duplicate (budget,
                    # pressure, score) and picks the scored target; a
                    # suppressed hedge re-arms without consuming a
                    # max_hedges slot.  Breaker-refused servers are
                    # never hedge targets (no fallback: duplicates are
                    # optional work).
                    up_eff = (ctrl.mitigation_up(up_l, now)
                              if ctrl is not None else up_l)
                    target = rc.hedge_target(depth, up_eff,
                                             slot.live.values(), now,
                                             slot.qidx)
                else:
                    target, _ = pick_mitigation(list(slot.live.values()),
                                                allow_fallback=False)
                if target >= 0:
                    slot.hedges += 1
                    tasks_hedged += 1
                    if tracing:
                        rec.emit(TASK_HEDGE, now, server_id=target,
                                 query_id=slot.qidx, deadline=slot.deadline,
                                 extra={"hedge": slot.hedges,
                                        "slot": slot.slot})
                    cid = new_copy(slot, target)
                    if rc is not None:
                        hedged.add(cid)
                    enqueue_copy(target, cid)
                    arm_timeout(cid)
                    if slot.hedges >= hedge.max_hedges:
                        continue
                delay = rc.hedge_delay(base) if rc is not None else base
                push(heap, (now + delay, _R_HEDGE, seq, "H", slot, base))
                seq += 1

        if qi >= m:
            break  # heap fully drained, no arrivals left

        # ----- query arrival -------------------------------------------
        now = next_arrival
        if has_sampling:
            while next_sample <= now:
                sample_times.append(next_sample)
                sample_queued.append(queued_tasks)
                sample_busy.append(busy_servers)
                next_sample += sample_interval
        qidx = qi
        qi += 1
        if tracing:
            rec.inc("queries_arrived")
            rec.emit(QUERY_ARRIVE, now, query_id=qidx,
                     class_name=classes[class_index[qidx]].name,
                     fanout=int(fanout[qidx]))
        if admission is not None and not admission.admit(now):
            rejected[qidx] = True
            if tracing:
                rec.inc("queries_rejected")
                rec.emit(QUERY_REJECTED, now, query_id=qidx,
                         class_name=classes[class_index[qidx]].name,
                         fanout=int(fanout[qidx]),
                         extra={"miss_ratio": admission.miss_ratio()})
            continue

        k = fanout_l[qidx]
        cls = classes[class_index_l[qidx]]
        pre = servers_list[qidx] if servers_list is not None else None

        if pre is not None:
            servers = pre
        elif placement is not None:
            spec = specs[qidx]
            if placement_wants_depths:
                servers = placement(spec, placement_rng, tuple(depth))
            else:
                servers = placement(spec, placement_rng)
            if len(servers) != k:
                raise ConfigurationError(
                    f"placement returned {len(servers)} servers for fanout {k}"
                )
            for sid in servers:
                if not 0 <= sid < n:
                    raise ConfigurationError(
                        f"placement returned server {sid} outside "
                        f"[0, {n}) for query {qidx}; shard maps must "
                        f"cover exactly the cluster's servers"
                    )
        elif k == n:
            servers = all_servers
        elif k == 1:
            servers = (int(placement_rng.integers(n)),)
        else:
            servers = tuple(
                placement_rng.choice(n, size=k, replace=False).tolist()
            )
        if scored_fanout and pre is None and placement is None:
            # The nominal uniform draw above still consumed the RNG, so
            # downstream streams are unperturbed; the slots just go to
            # the k best-scored servers instead.
            servers = tuple(rc.place_fanout(k, depth))

        if ctrl is not None:
            decision = ctrl.route_query(now, qidx, cls, servers, depth)
            if decision is None:
                rejected[qidx] = True
                if tracing:
                    rec.inc("queries_rejected")
                    rec.emit(QUERY_REJECTED, now, query_id=qidx,
                             class_name=cls.name, fanout=k,
                             extra={"miss_ratio": ctrl.miss_ratio()})
                continue
            servers = decision.servers
            deadline = decision.deadline
            coverage_q[qidx] = decision.coverage
            degraded_q[qidx] = decision.degraded
            remaining[qidx] = len(servers)
        elif use_budget_array and pre is None:
            deadline = now + query_budget[qidx]
        elif estimator.homogeneous:
            deadline = estimator.deadline(now, cls, fanout=k)
        else:
            deadline = estimator.deadline(now, cls, servers=servers)

        key = policy.queue_key(now, cls, deadline)
        for j, sid in enumerate(servers):
            slot = _Slot(qidx, j, key, deadline, sid)
            if kill_mode and down[sid]:
                # Dispatch-time redirect away from a down server (free:
                # no retry budget consumed).
                target = pick_server(depth, up_l)
                if target < 0:
                    slot_fail(slot)
                    continue
                tasks_retried += 1
                if tracing:
                    rec.emit(TASK_RETRY, now, server_id=target,
                             query_id=qidx, deadline=deadline,
                             extra={"attempt": 0, "reason": "redirect",
                                    "slot": j})
                sid = target
            cid = new_copy(slot, sid)
            if rc is not None:
                rc.record_launch()
            enqueue_copy(sid, cid)
            arm_timeout(cid)
            arm_hedge(slot)

    # ------------------------------------------------------------------
    # Wrap up.
    # ------------------------------------------------------------------
    if comp_idx:
        # Deferred completion stamps, applied in one vectorized pass.
        # Elementwise float64 subtraction — bit-identical to the scalar
        # ``now - arrival[qidx]`` writes it replaces.
        idx = np.asarray(comp_idx, dtype=np.intp)
        latency[idx] = np.asarray(comp_time) - arrival[idx]

    return _finalize_faults(
        config, policy, n, server_cdfs, classes, class_index, fanout,
        arrival, latency, rejected, failed_q, busy_total, tasks_total,
        tasks_missed, now, tasks_failed, tasks_retried, tasks_hedged,
        tasks_cancelled, server_failures, sample_times, sample_queued,
        sample_busy, coverage_q, degraded_q, ctrl, rc, rec, tracing)
