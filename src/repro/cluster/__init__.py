"""Cluster-scale simulation of the TailGuard query processing model.

:func:`~repro.cluster.simulation.simulate` runs the paper's Fig. 2
model — query arrivals, a query handler computing deadlines, N task
servers each with one policy-ordered queue — over tens of thousands of
queries in seconds, producing a :class:`~repro.cluster.results.SimulationResult`
with per-type tail latencies, utilization and deadline-miss statistics.
"""

from repro.cluster.config import ClusterConfig, ServicePerturbation
from repro.cluster.results import SimulationResult
from repro.cluster.simulation import simulate

__all__ = ["ClusterConfig", "ServicePerturbation",
           "SimulationResult", "simulate"]
