"""Sensing-as-a-Service testbed simulation (paper §IV.E).

The paper evaluates TailGuard on a physical 4-cluster Raspberry-Pi
testbed serving temperature/humidity sensing queries.  We have no such
hardware, so this package reproduces the testbed as a model:

* :mod:`repro.sas.testbed` — the 32-node heterogeneous cluster, class
  A/B/C use cases and placement rules, driving the cluster simulator
  (reproduces Fig. 9);
* :mod:`repro.sas.sensing` — a generative sensing-record datastore
  whose retrieval cost model explains the testbed's service times
  (used by the edge-sensing example on the DES kernel);
* :mod:`repro.sas.network` — per-cluster communication delay model.
"""

from repro.sas.network import NetworkModel
from repro.sas.sensing import SensingDataStore, SensingTaskModel
from repro.sas.testbed import (
    CLUSTER_NAMES,
    SaSTestbed,
    UseCase,
)

__all__ = [
    "CLUSTER_NAMES",
    "NetworkModel",
    "SaSTestbed",
    "SensingDataStore",
    "SensingTaskModel",
    "UseCase",
]
