"""A generative model of the edge sensing datastore (paper §IV.E).

Each edge node keeps "up to eighteen-month-worth" of temperature and
humidity records and a task "has an equal probability of retrieving one
to up to thirty-day-worth of consecutive records starting from a random
time in the eighteen-month period".  :class:`SensingDataStore` models
the record store; :class:`SensingTaskModel` turns a retrieval into a
service time:

    service = base_overhead + records_scanned * per_record_cost * speed

with a lognormal noise factor capturing OS/interpreter jitter on the
Raspberry-Pi-class nodes.  The model is the *explanatory* counterpart
of the calibrated per-cluster CDFs in :mod:`repro.sas.testbed`: the
``edge_sensing_sas`` example runs it live on the DES kernel, and a test
checks that a calibrated task model's statistics land near a target
cluster's published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributions import Distribution, LogNormal
from repro.distributions.base import ArrayLike
from repro.errors import ConfigurationError

#: Records per sensor per day ("receives sensing data periodically"):
#: one reading every 5 minutes.
RECORDS_PER_SENSOR_PER_DAY = 24 * 12
SENSORS_PER_NODE = 2  # temperature + humidity
RETENTION_DAYS = 18 * 30


@dataclass(frozen=True)
class SensingDataStore:
    """One edge node's local record database."""

    retention_days: int = RETENTION_DAYS
    records_per_sensor_per_day: int = RECORDS_PER_SENSOR_PER_DAY
    sensors: int = SENSORS_PER_NODE

    def __post_init__(self) -> None:
        if self.retention_days < 1 or self.records_per_sensor_per_day < 1:
            raise ConfigurationError("retention and record rate must be >= 1")
        if self.sensors < 1:
            raise ConfigurationError("need at least one sensor")

    @property
    def total_records(self) -> int:
        return self.retention_days * self.records_per_sensor_per_day * self.sensors

    def records_for_days(self, days: float) -> int:
        """Records returned by a query spanning ``days`` of history."""
        if days <= 0:
            raise ConfigurationError(f"days must be positive, got {days}")
        days = min(days, float(self.retention_days))
        return int(round(days * self.records_per_sensor_per_day * self.sensors))

    def sample_request_days(self, rng: np.random.Generator,
                            max_days: int = 30) -> int:
        """Uniform 1..max_days-worth of consecutive records (§IV.E)."""
        return int(rng.integers(1, max_days + 1))


class SensingTaskModel(Distribution):
    """Service-time distribution induced by the retrieval-cost model.

    Implemented as a :class:`Distribution` so it can plug directly into
    the deadline estimator, task servers and the cluster simulator.
    """

    def __init__(
        self,
        store: SensingDataStore,
        base_overhead_ms: float,
        per_record_us: float,
        speed_factor: float = 1.0,
        jitter_sigma: float = 0.35,
        max_request_days: int = 30,
    ) -> None:
        if base_overhead_ms < 0 or per_record_us <= 0 or speed_factor <= 0:
            raise ConfigurationError("cost parameters must be positive")
        if jitter_sigma < 0:
            raise ConfigurationError(f"jitter_sigma must be >= 0, got {jitter_sigma}")
        self.store = store
        self.base_overhead_ms = float(base_overhead_ms)
        self.per_record_us = float(per_record_us)
        self.speed_factor = float(speed_factor)
        self.jitter_sigma = float(jitter_sigma)
        self.max_request_days = int(max_request_days)
        # Lognormal with unit median; mean exp(sigma^2/2).
        self._jitter = LogNormal(0.0, jitter_sigma) if jitter_sigma > 0 else None

    def _base_cost_ms(self, days: np.ndarray) -> np.ndarray:
        records = (
            days * self.store.records_per_sensor_per_day * self.store.sensors
        )
        return (
            self.base_overhead_ms
            + records * self.per_record_us / 1000.0 * self.speed_factor
        )

    def sample(self, rng: np.random.Generator,
               size: Optional[int] = None) -> ArrayLike:
        n = 1 if size is None else size
        days = rng.integers(1, self.max_request_days + 1, size=n).astype(float)
        cost = self._base_cost_ms(days)
        if self._jitter is not None:
            cost = cost * np.asarray(self._jitter.sample(rng, n), dtype=float)
        return float(cost[0]) if size is None else cost

    # The analytic CDF mixes the discrete day count with the lognormal
    # jitter; evaluate it by mixture over day values (exact).
    def cdf(self, t: ArrayLike) -> ArrayLike:
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        days = np.arange(1, self.max_request_days + 1, dtype=float)
        base = self._base_cost_ms(days)  # (D,)
        if self._jitter is None:
            probs = (t_arr[:, None] >= base[None, :]).mean(axis=1)
        else:
            ratio = np.maximum(t_arr[:, None], 1e-12) / base[None, :]
            probs = np.asarray(self._jitter.cdf(ratio), dtype=float).mean(axis=1)
            probs = np.where(t_arr <= 0, 0.0, probs)
        scalar = np.isscalar(t) or np.asarray(t).ndim == 0
        return float(probs[0]) if scalar else probs

    def quantile(self, q: ArrayLike) -> ArrayLike:
        from repro.distributions.base import bisect_quantile, validate_probability

        q_arr = validate_probability(q)
        hi_base = float(self._base_cost_ms(np.asarray([self.max_request_days]))[0])
        hi = hi_base * (50.0 if self._jitter is not None else 1.0)
        scalar = np.ndim(q) == 0
        values = np.array(
            [bisect_quantile(self.cdf, float(qi), 0.0, hi)
             for qi in np.atleast_1d(q_arr)]
        )
        return float(values[0]) if scalar else values

    def mean(self) -> float:
        days = np.arange(1, self.max_request_days + 1, dtype=float)
        base = float(self._base_cost_ms(days).mean())
        if self._jitter is None:
            return base
        return base * float(np.exp(0.5 * self.jitter_sigma**2))

    @classmethod
    def calibrated_to_mean(
        cls,
        target_mean_ms: float,
        store: Optional[SensingDataStore] = None,
        base_fraction: float = 0.25,
        jitter_sigma: float = 0.35,
        speed_factor: float = 1.0,
    ) -> "SensingTaskModel":
        """Choose costs so the model's mean equals a cluster's published
        mean post-queuing time (e.g. 82 ms for the Server-room)."""
        if target_mean_ms <= 0:
            raise ConfigurationError("target mean must be positive")
        if not 0 <= base_fraction < 1:
            raise ConfigurationError("base_fraction must be in [0, 1)")
        store = store if store is not None else SensingDataStore()
        jitter_mean = float(np.exp(0.5 * jitter_sigma**2)) if jitter_sigma else 1.0
        base = target_mean_ms * base_fraction / jitter_mean
        mean_days = (1 + 30) / 2.0
        mean_records = (
            mean_days * store.records_per_sensor_per_day * store.sensors
        )
        variable = target_mean_ms * (1 - base_fraction) / jitter_mean
        per_record_us = variable * 1000.0 / (mean_records * speed_factor)
        return cls(store, base, per_record_us, speed_factor, jitter_sigma)
