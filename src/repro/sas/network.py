"""Communication-delay model for the SaS testbed.

The paper's clusters sit in two buildings; the Wet-lab cluster is
co-located with the query handler ("to minimize the communication
delay") and the Server-room cluster is in the same building.  Task
post-queuing times measured at the handler therefore include one
round trip over keep-alive HTTP/1.1.  :class:`NetworkModel` provides
per-cluster RTT distributions for the generative example path; the
calibrated testbed CDFs already include these delays.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributions import Distribution, Shifted, Weibull
from repro.errors import ConfigurationError

#: Default per-cluster round-trip profile: (floor ms, typical extra ms).
_DEFAULT_RTT = {
    "wet-lab": (0.3, 0.5),        # co-located with the query handler
    "server-room": (1.0, 2.0),    # same building, through a switch
    "faculty": (2.0, 4.0),        # different building
    "gta": (2.0, 4.0),
}


class NetworkModel:
    """Per-cluster RTT distributions (floor + Weibull-tailed jitter)."""

    def __init__(self, rtt_profile: Optional[Dict[str, tuple]] = None) -> None:
        profile = rtt_profile if rtt_profile is not None else _DEFAULT_RTT
        if not profile:
            raise ConfigurationError("need at least one cluster RTT profile")
        self._rtts: Dict[str, Distribution] = {}
        for cluster, (floor, scale) in profile.items():
            if floor < 0 or scale <= 0:
                raise ConfigurationError(
                    f"invalid RTT profile for {cluster!r}: ({floor}, {scale})"
                )
            # Shape 1.5 gives a mild but real tail (TCP retransmits,
            # interpreter pauses) without dominating service time.
            self._rtts[cluster] = Shifted(Weibull(1.5, scale), floor)

    def clusters(self) -> tuple:
        return tuple(sorted(self._rtts))

    def rtt(self, cluster: str) -> Distribution:
        try:
            return self._rtts[cluster]
        except KeyError:
            raise ConfigurationError(
                f"unknown cluster {cluster!r}; known: {self.clusters()}"
            ) from None

    def sample_rtt(self, cluster: str, rng: np.random.Generator) -> float:
        return float(self.rtt(cluster).sample(rng))

    def end_to_end(self, cluster: str, service: Distribution) -> Distribution:
        """Service time plus this cluster's RTT *floor* as a shifted
        distribution (a cheap composition adequate for estimation; the
        simulation example samples RTT and service independently)."""
        floor = float(self.rtt(cluster).quantile(0.0))
        return Shifted(service, floor)
