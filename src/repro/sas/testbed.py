"""The SaS testbed model (paper §IV.E, Figs. 8–9).

Topology: four clusters of 8 edge nodes — Server-room, Wet-lab,
Faculty and GTA.  Each cluster's unloaded task post-queuing-time CDF is
reconstructed from the published statistics (mean / 95th / 99th in ms):

    Server-room  82 / 235 / 300
    Wet-lab      31 / 112 / 136
    Faculty      92 / 226 / 306
    GTA          91 / 228 / 304

Use cases (classes):

* **A** — device monitoring; fanout 1; 99th-SLO 800 ms; 50% of
  queries; 80% of them hit a random Server-room node, the rest a
  random node in one of the other clusters.
* **B** — area overview; fanout 4, one random node per cluster;
  SLO 1300 ms; 40% of queries.
* **C** — long-term records; fanout 32 (every node); SLO 1800 ms;
  10% of queries.

The x-axis of Fig. 9 is the load *of the Server-room cluster* (the
bottleneck); :meth:`SaSTestbed.arrival_rate_for_load` converts it to a
query arrival rate using the expected Server-room tasks per query.

Deadline estimation shares one CDF per cluster ("we let all 8 edge
nodes in each cluster share the same CDF"), exercising TailGuard's
tolerance to approximate CDFs exactly as the paper's stress test does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.results import SimulationResult
from repro.cluster.simulation import simulate
from repro.core.deadline import DeadlineEstimator
from repro.distributions import Distribution, PiecewiseLinearCDF
from repro.distributions.piecewise import calibrated_piecewise_cdf
from repro.errors import ConfigurationError
from repro.types import QuerySpec, ServiceClass

CLUSTER_NAMES: Tuple[str, ...] = ("server-room", "wet-lab", "faculty", "gta")

#: Published post-queuing-time statistics per cluster: mean, p95, p99 (ms).
_CLUSTER_STATS: Dict[str, Tuple[float, float, float]] = {
    "server-room": (82.0, 235.0, 300.0),
    "wet-lab": (31.0, 112.0, 136.0),
    "faculty": (92.0, 226.0, 306.0),
    "gta": (91.0, 228.0, 304.0),
}


def _cluster_cdf(mean: float, p95: float, p99: float) -> PiecewiseLinearCDF:
    """Reconstruct one cluster's post-queuing CDF from its statistics."""
    return calibrated_piecewise_cdf(
        body_anchors=[(0.50, mean * 0.75), (0.90, mean * 1.9)],
        fixed_anchors=[(0.95, p95), (0.99, p99)],
        minimum=mean * 0.1,
        maximum=p99 * 1.3,
        target_mean=mean,
    )


@dataclass(frozen=True)
class UseCase:
    """One SaS use case: a service class plus its placement behaviour."""

    service_class: ServiceClass
    probability: float
    fanout: int
    description: str


class SaSTestbed:
    """The 32-node heterogeneous SaS testbed driving Fig. 9."""

    def __init__(
        self,
        nodes_per_cluster: int = 8,
        server_room_bias: float = 0.8,
        class_probabilities: Tuple[float, float, float] = (0.5, 0.4, 0.1),
        slos_ms: Tuple[float, float, float] = (800.0, 1300.0, 1800.0),
    ) -> None:
        if nodes_per_cluster < 1:
            raise ConfigurationError("need at least one node per cluster")
        if not 0 <= server_room_bias <= 1:
            raise ConfigurationError(
                f"server_room_bias must be in [0, 1], got {server_room_bias}"
            )
        if len(class_probabilities) != 3 or not np.isclose(
            sum(class_probabilities), 1.0
        ):
            raise ConfigurationError("class probabilities must be 3 values summing to 1")
        self.nodes_per_cluster = nodes_per_cluster
        self.server_room_bias = server_room_bias
        self.n_nodes = nodes_per_cluster * len(CLUSTER_NAMES)

        self.cluster_nodes: Dict[str, Tuple[int, ...]] = {}
        self.node_cluster: Dict[int, str] = {}
        node = 0
        for name in CLUSTER_NAMES:
            ids = tuple(range(node, node + nodes_per_cluster))
            self.cluster_nodes[name] = ids
            for nid in ids:
                self.node_cluster[nid] = name
            node += nodes_per_cluster

        self.cluster_cdfs: Dict[str, PiecewiseLinearCDF] = {
            name: _cluster_cdf(*_CLUSTER_STATS[name]) for name in CLUSTER_NAMES
        }
        self.node_cdfs: Dict[int, Distribution] = {
            nid: self.cluster_cdfs[self.node_cluster[nid]]
            for nid in range(self.n_nodes)
        }

        class_a = ServiceClass("class-A", slos_ms[0], 99.0, priority=0)
        class_b = ServiceClass("class-B", slos_ms[1], 99.0, priority=1)
        class_c = ServiceClass("class-C", slos_ms[2], 99.0, priority=2)
        self.use_cases: Tuple[UseCase, ...] = (
            UseCase(class_a, class_probabilities[0], 1,
                    "per-device monitoring, Server-room-heavy"),
            UseCase(class_b, class_probabilities[1], len(CLUSTER_NAMES),
                    "all-area overview, one node per cluster"),
            UseCase(class_c, class_probabilities[2], self.n_nodes,
                    "long-term records from every node"),
        )

    # ------------------------------------------------------------------
    # Load accounting on the bottleneck cluster.
    # ------------------------------------------------------------------
    def expected_server_room_tasks_per_query(self) -> float:
        """E[tasks landing on the Server-room cluster per query]."""
        case_a, case_b, case_c = self.use_cases
        return (
            case_a.probability * self.server_room_bias
            + case_b.probability * 1.0
            + case_c.probability * self.nodes_per_cluster
        )

    def arrival_rate_for_load(self, server_room_load: float) -> float:
        """Query rate (queries/ms) giving the target Server-room load."""
        if server_room_load <= 0:
            raise ConfigurationError(
                f"load must be positive, got {server_room_load}"
            )
        mean_service = self.cluster_cdfs["server-room"].mean()
        per_query = self.expected_server_room_tasks_per_query()
        return (
            server_room_load * self.nodes_per_cluster / (per_query * mean_service)
        )

    def cluster_load(self, server_room_load: float, cluster: str) -> float:
        """Offered load of any cluster at a given Server-room load."""
        if cluster not in self.cluster_nodes:
            raise ConfigurationError(
                f"unknown cluster {cluster!r}; known: {CLUSTER_NAMES}"
            )
        rate = self.arrival_rate_for_load(server_room_load)
        case_a, case_b, case_c = self.use_cases
        if cluster == "server-room":
            tasks = self.expected_server_room_tasks_per_query()
        else:
            tasks = (
                case_a.probability * (1 - self.server_room_bias) / 3.0
                + case_b.probability * 1.0
                + case_c.probability * self.nodes_per_cluster
            )
        mean_service = self.cluster_cdfs[cluster].mean()
        return rate * tasks * mean_service / self.nodes_per_cluster

    # ------------------------------------------------------------------
    # Query generation with use-case placement.
    # ------------------------------------------------------------------
    def generate_specs(
        self,
        n_queries: int,
        server_room_load: float,
        rng: np.random.Generator,
    ) -> List[QuerySpec]:
        """Poisson arrivals with per-use-case fanout and placement."""
        if n_queries < 1:
            raise ConfigurationError(f"need >= 1 query, got {n_queries}")
        rate = self.arrival_rate_for_load(server_room_load)
        arrival_rng, case_rng, place_rng = rng.spawn(3)
        times = np.cumsum(arrival_rng.exponential(1.0 / rate, n_queries))
        probs = np.asarray([case.probability for case in self.use_cases])
        case_idx = case_rng.choice(len(self.use_cases), size=n_queries, p=probs)

        other_clusters = [c for c in CLUSTER_NAMES if c != "server-room"]
        specs: List[QuerySpec] = []
        for i in range(n_queries):
            case = self.use_cases[case_idx[i]]
            if case.fanout == 1:
                if place_rng.random() < self.server_room_bias:
                    cluster = "server-room"
                else:
                    cluster = other_clusters[place_rng.integers(len(other_clusters))]
                nodes = self.cluster_nodes[cluster]
                servers: Tuple[int, ...] = (
                    int(nodes[place_rng.integers(len(nodes))]),
                )
            elif case.fanout == len(CLUSTER_NAMES):
                servers = tuple(
                    int(self.cluster_nodes[c][place_rng.integers(
                        self.nodes_per_cluster)])
                    for c in CLUSTER_NAMES
                )
            else:
                servers = tuple(range(self.n_nodes))
            specs.append(
                QuerySpec(
                    query_id=i,
                    arrival_time=float(times[i]),
                    fanout=len(servers),
                    service_class=case.service_class,
                    servers=servers,
                )
            )
        return specs

    # ------------------------------------------------------------------
    # Simulation plumbing.
    # ------------------------------------------------------------------
    def estimator(self, online_window: Optional[int] = None) -> DeadlineEstimator:
        """A deadline estimator sharing one CDF per cluster (§IV.E)."""
        return DeadlineEstimator(
            dict(self.node_cdfs),
            online_window=online_window,
            server_groups=dict(self.node_cluster),
        )

    def config(
        self,
        policy: str,
        server_room_load: float,
        n_queries: int = 20_000,
        seed: int = 1,
        online_window: Optional[int] = None,
    ) -> ClusterConfig:
        rng = np.random.default_rng(seed)
        specs = self.generate_specs(n_queries, server_room_load, rng)
        return ClusterConfig(
            n_servers=self.n_nodes,
            policy=policy,
            specs=specs,
            seed=seed,
            server_cdfs=dict(self.node_cdfs),
            estimator=self.estimator(online_window=online_window),
        )

    def run(
        self,
        policy: str,
        server_room_load: float,
        n_queries: int = 20_000,
        seed: int = 1,
        online_window: Optional[int] = None,
    ) -> SimulationResult:
        return simulate(
            self.config(policy, server_room_load, n_queries, seed, online_window)
        )

    def sweep(
        self,
        policy: str,
        server_room_loads: Sequence[float],
        n_queries: int = 20_000,
        seed: int = 1,
    ) -> List[Dict[str, float]]:
        """Per-class 99th tails at each Server-room load (Fig. 9 b–d)."""
        rows: List[Dict[str, float]] = []
        for load in server_room_loads:
            result = self.run(policy, load, n_queries, seed)
            row: Dict[str, float] = {"server_room_load": load}
            for case in self.use_cases:
                name = case.service_class.name
                row[name] = result.tail(case.service_class.percentile, name)
            rows.append(row)
        return rows

    def max_load(
        self,
        policy: str,
        lo: float = 0.10,
        hi: float = 0.70,
        tol: float = 0.01,
        n_queries: int = 20_000,
        seeds: Tuple[int, ...] = (1,),
    ) -> float:
        """Bisection for the max Server-room load meeting all SLOs."""

        def feasible(load: float) -> bool:
            for seed in seeds:
                result = self.run(policy, load, n_queries, seed)
                for case in self.use_cases:
                    cls = case.service_class
                    if result.tail(cls.percentile, cls.name) > cls.slo_ms:
                        return False
            return True

        if not feasible(lo):
            return 0.0
        if feasible(hi):
            return hi
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if feasible(mid):
                lo = mid
            else:
                hi = mid
        return lo
