"""Percentile estimation.

Offline analysis uses exact percentiles over collected samples
(:func:`exact_percentile`).  Long-running services cannot retain every
sample, so a constant-memory streaming estimator is provided too: the
P² algorithm of Jain & Chlamtac (CACM 1985), which tracks a single
quantile with five markers.  The SaS testbed's monitoring path uses it,
and a property test checks it against the exact value.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError


def exact_percentile(values: Union[Sequence[float], np.ndarray],
                     percentile: float) -> float:
    """Exact percentile (numpy linear interpolation) of a sample set."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("cannot take a percentile of no samples")
    if not 0 <= percentile <= 100:
        raise ConfigurationError(f"percentile must be in [0, 100], got {percentile}")
    return float(np.percentile(arr, percentile))


def tail_latency(values: Union[Sequence[float], np.ndarray],
                 percentile: float = 99.0) -> float:
    """Alias of :func:`exact_percentile` with the paper's default p=99."""
    return exact_percentile(values, percentile)


class P2QuantileEstimator:
    """Streaming quantile estimation with the P² algorithm.

    Maintains five markers whose heights converge to the ``q``-quantile
    without storing observations.  Accuracy is excellent for central
    quantiles and reasonable for p99 once a few thousand samples have
    been seen.
    """

    def __init__(self, quantile: float) -> None:
        if not 0 < quantile < 1:
            raise ConfigurationError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = float(quantile)
        self._initial: list = []
        self._heights: Optional[np.ndarray] = None
        self._positions: Optional[np.ndarray] = None
        self._desired: Optional[np.ndarray] = None
        q = self.quantile
        self._increments = np.array([0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0])
        self.count = 0

    def update(self, value: float) -> None:
        self.count += 1
        if self._heights is None:
            self._initial.append(float(value))
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = np.asarray(self._initial, dtype=float)
                self._positions = np.arange(1.0, 6.0)
                self._desired = 1.0 + 4.0 * self._increments
            return

        heights = self._heights
        positions = self._positions
        # Find the cell the observation falls into and bump marker
        # positions above it.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = int(np.searchsorted(heights, value, side="right")) - 1
        positions[cell + 1:] += 1.0
        self._desired += self._increments

        # Adjust the three interior markers with parabolic (or linear)
        # interpolation when they have drifted a full position.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                direction = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + direction / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + direction) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - direction) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, direction: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(direction)
        return h[i] + direction * (h[j] - h[i]) / (n[j] - n[i])

    def update_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.update(value)

    def value(self) -> float:
        """Current quantile estimate."""
        if self.count == 0:
            raise ConfigurationError("no observations yet")
        if self._heights is None:
            data = sorted(self._initial)
            return float(np.quantile(np.asarray(data), self.quantile))
        return float(self._heights[2])
