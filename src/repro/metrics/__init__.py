"""Latency metrics: exact and streaming percentiles, collectors."""

from repro.metrics.percentile import (
    P2QuantileEstimator,
    exact_percentile,
    tail_latency,
)
from repro.metrics.collector import LatencyCollector
from repro.metrics.bootstrap import bootstrap_percentile_ci, tail_with_ci

__all__ = [
    "LatencyCollector",
    "bootstrap_percentile_ci",
    "tail_with_ci",
    "P2QuantileEstimator",
    "exact_percentile",
    "tail_latency",
]
