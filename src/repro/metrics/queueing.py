"""Closed-form queueing theory used for validation and bracketing.

The simulator is validated against these formulas (see
``tests/integration/test_queueing_theory.py``), and the max-load search
uses the M/G/1 approximation to pick an informed initial bracket.

All formulas are for a single-server FIFO queue with Poisson arrivals:

* M/M/1 — exponential service: ``E[T] = 1/(μ−λ)``; T ~ Exp(μ−λ).
* M/D/1 — deterministic service (Pollaczek–Khinchine special case).
* M/G/1 — general service via the P-K formula:
  ``E[W] = λ E[S²] / (2 (1−ρ))``.
"""

from __future__ import annotations

import numpy as np

from repro.distributions import Distribution
from repro.errors import ConfigurationError


def _check_rho(rho: float) -> None:
    if not 0 <= rho < 1:
        raise ConfigurationError(
            f"utilization must be in [0, 1) for a stable queue, got {rho}"
        )


def mm1_mean_response(rho: float, mu: float = 1.0) -> float:
    """E[T] for M/M/1 at utilization ``rho`` and service rate ``mu``."""
    _check_rho(rho)
    if mu <= 0:
        raise ConfigurationError(f"service rate must be positive, got {mu}")
    return 1.0 / (mu * (1.0 - rho))

def mm1_response_quantile(rho: float, q: float, mu: float = 1.0) -> float:
    """Response-time quantile for M/M/1 (T is exponential)."""
    _check_rho(rho)
    if not 0 <= q < 1:
        raise ConfigurationError(f"q must be in [0, 1), got {q}")
    return float(-np.log(1.0 - q) / (mu * (1.0 - rho)))


def md1_mean_wait(rho: float, service: float = 1.0) -> float:
    """E[W] for M/D/1 (Pollaczek–Khinchine with zero service variance)."""
    _check_rho(rho)
    if service <= 0:
        raise ConfigurationError(f"service time must be positive, got {service}")
    return rho * service / (2.0 * (1.0 - rho))


def mg1_mean_wait(rho: float, service_dist: Distribution) -> float:
    """E[W] for M/G/1 via the Pollaczek–Khinchine formula.

    ``E[W] = λ E[S²] / (2 (1−ρ))`` with ``λ = ρ / E[S]``.  The second
    moment is computed numerically from the distribution's quantile
    function.
    """
    _check_rho(rho)
    mean = service_dist.mean()
    if mean <= 0:
        raise ConfigurationError("service distribution must have positive mean")
    u = (np.arange(50_000) + 0.5) / 50_000
    second_moment = float(np.mean(np.square(service_dist.quantile(u))))
    arrival_rate = rho / mean
    return arrival_rate * second_moment / (2.0 * (1.0 - rho))


def mg1_mean_response(rho: float, service_dist: Distribution) -> float:
    """E[T] = E[W] + E[S] for M/G/1."""
    return mg1_mean_wait(rho, service_dist) + service_dist.mean()


def approximate_max_load(
    service_dist: Distribution,
    budget_ms: float,
    percentile: float = 99.0,
) -> float:
    """Rough upper bound on the load sustaining a queuing-time budget.

    Treats each task server as an M/G/1 queue and asks: at what
    utilization does the *exponential approximation* of the waiting
    time put its ``percentile`` below ``budget_ms``?  The waiting-time
    tail of M/G/1 is approximately ``P(W > t) ≈ ρ exp(−t/E[W|W>0])``;
    inverting for the target percentile gives a closed form in ρ that
    we solve by bisection.  Used to seed the max-load bisection with a
    tight upper bracket — not as a guarantee.
    """
    if budget_ms <= 0:
        return 0.0
    if not 0 < percentile < 100:
        raise ConfigurationError(
            f"percentile must be in (0, 100), got {percentile}"
        )
    epsilon = 1.0 - percentile / 100.0

    def tail_ok(rho: float) -> bool:
        if rho <= 0:
            return True
        mean_wait = mg1_mean_wait(rho, service_dist)
        if mean_wait <= 0:
            return True
        # P(W > budget) ≈ ρ exp(−budget (1−ρ)... ) — use the busy
        # probability times the conditional-exponential tail.
        conditional_mean = mean_wait / rho
        return rho * np.exp(-budget_ms / conditional_mean) <= epsilon

    lo, hi = 0.0, 0.999
    if tail_ok(hi):
        return hi
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if tail_ok(mid):
            lo = mid
        else:
            hi = mid
    return lo
