"""Grouped latency collection.

Experiments measure tail latency *per query type* — a (service class,
fanout) pair (§IV.B: "we measure the tail latency for each type of
queries").  :class:`LatencyCollector` groups observations by type and
answers percentile queries per group or overall.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.percentile import exact_percentile

GroupKey = Tuple[str, int]


class LatencyCollector:
    """Latency samples grouped by (class name, fanout)."""

    def __init__(self) -> None:
        self._groups: Dict[GroupKey, List[float]] = {}

    def record(self, class_name: str, fanout: int, latency: float) -> None:
        if latency < 0:
            raise ConfigurationError(f"negative latency {latency}")
        key = (class_name, fanout)
        bucket = self._groups.get(key)
        if bucket is None:
            bucket = []
            self._groups[key] = bucket
        bucket.append(latency)

    def groups(self) -> Tuple[GroupKey, ...]:
        return tuple(sorted(self._groups))

    def count(self, class_name: Optional[str] = None,
              fanout: Optional[int] = None) -> int:
        return sum(
            len(bucket)
            for (name, k), bucket in self._groups.items()
            if (class_name is None or name == class_name)
            and (fanout is None or k == fanout)
        )

    def _select(self, class_name: Optional[str],
                fanout: Optional[int]) -> np.ndarray:
        matches = [
            bucket
            for (name, k), bucket in self._groups.items()
            if (class_name is None or name == class_name)
            and (fanout is None or k == fanout)
        ]
        if not matches:
            raise ConfigurationError(
                f"no samples for class={class_name!r}, fanout={fanout!r}"
            )
        return np.concatenate([np.asarray(b, dtype=float) for b in matches])

    def percentile(self, percentile: float, class_name: Optional[str] = None,
                   fanout: Optional[int] = None) -> float:
        return exact_percentile(self._select(class_name, fanout), percentile)

    def mean(self, class_name: Optional[str] = None,
             fanout: Optional[int] = None) -> float:
        return float(self._select(class_name, fanout).mean())

    def per_group_percentile(self, percentile: float) -> Dict[GroupKey, float]:
        return {
            key: exact_percentile(np.asarray(bucket, dtype=float), percentile)
            for key, bucket in sorted(self._groups.items())
        }
