"""Grouped latency collection.

Experiments measure tail latency *per query type* — a (service class,
fanout) pair (§IV.B: "we measure the tail latency for each type of
queries").  :class:`LatencyCollector` groups observations by type and
answers percentile queries per group or overall.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.percentile import exact_percentile

GroupKey = Tuple[str, int]


class LatencyCollector:
    """Latency samples grouped by (class name, fanout).

    The ndarray view of each group is cached and invalidated on the
    next :meth:`record` into that group, so repeated
    ``percentile``/``mean`` calls (the report-building pattern: many
    reads after the run) convert each group once instead of per call.
    """

    def __init__(self) -> None:
        self._groups: Dict[GroupKey, List[float]] = {}
        self._arrays: Dict[GroupKey, np.ndarray] = {}

    def record(self, class_name: str, fanout: int, latency: float) -> None:
        if latency < 0:
            raise ConfigurationError(f"negative latency {latency}")
        key = (class_name, fanout)
        bucket = self._groups.get(key)
        if bucket is None:
            bucket = []
            self._groups[key] = bucket
        else:
            self._arrays.pop(key, None)
        bucket.append(latency)

    def _group_array(self, key: GroupKey) -> np.ndarray:
        array = self._arrays.get(key)
        if array is None:
            array = np.asarray(self._groups[key], dtype=float)
            self._arrays[key] = array
        return array

    def groups(self) -> Tuple[GroupKey, ...]:
        return tuple(sorted(self._groups))

    def count(self, class_name: Optional[str] = None,
              fanout: Optional[int] = None) -> int:
        return sum(
            len(bucket)
            for (name, k), bucket in self._groups.items()
            if (class_name is None or name == class_name)
            and (fanout is None or k == fanout)
        )

    def _select(self, class_name: Optional[str],
                fanout: Optional[int]) -> np.ndarray:
        matches = [
            key
            for key in self._groups
            if (class_name is None or key[0] == class_name)
            and (fanout is None or key[1] == fanout)
        ]
        if not matches:
            raise ConfigurationError(
                f"no samples for class={class_name!r}, fanout={fanout!r}"
            )
        if len(matches) == 1:
            return self._group_array(matches[0])
        return np.concatenate([self._group_array(key) for key in matches])

    def percentile(self, percentile: float, class_name: Optional[str] = None,
                   fanout: Optional[int] = None) -> float:
        return exact_percentile(self._select(class_name, fanout), percentile)

    def mean(self, class_name: Optional[str] = None,
             fanout: Optional[int] = None) -> float:
        return float(self._select(class_name, fanout).mean())

    def per_group_percentile(self, percentile: float) -> Dict[GroupKey, float]:
        return {
            key: exact_percentile(self._group_array(key), percentile)
            for key in sorted(self._groups)
        }

    def summary(self) -> Dict[str, Any]:
        """JSON-ready per-group statistics (used by the obs exporters)."""
        groups = []
        for key in sorted(self._groups):
            array = self._group_array(key)
            groups.append({
                "class_name": key[0],
                "fanout": key[1],
                "count": int(array.size),
                "mean": float(array.mean()),
                "p50": exact_percentile(array, 50.0),
                "p99": exact_percentile(array, 99.0),
            })
        return {"total_count": self.count(), "groups": groups}
