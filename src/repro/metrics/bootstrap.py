"""Bootstrap confidence intervals for tail latencies.

A p99 over a few hundred samples is noisy; the max-load bisection and
the benchmark assertions absorb that with tolerances, but when a single
number needs an honest error bar — e.g. reporting a measured tail in
EXPERIMENTS.md — a percentile-bootstrap interval is the standard tool.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError


def bootstrap_percentile_ci(
    values: Union[Sequence[float], np.ndarray],
    percentile: float = 99.0,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """(point estimate, lower, upper) for a percentile.

    Percentile bootstrap: resample with replacement, recompute the
    percentile, take the ``(1±confidence)/2`` quantiles of the
    resampled statistics.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        raise ConfigurationError("need at least two samples for a CI")
    if not 0 <= percentile <= 100:
        raise ConfigurationError(f"percentile must be in [0, 100], got {percentile}")
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ConfigurationError(f"n_resamples too small: {n_resamples}")

    rng = np.random.default_rng(seed)
    point = float(np.percentile(arr, percentile))
    indices = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.percentile(arr[indices], percentile, axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.quantile(stats, alpha))
    upper = float(np.quantile(stats, 1.0 - alpha))
    return point, lower, upper


def tail_with_ci(
    values: Union[Sequence[float], np.ndarray],
    percentile: float = 99.0,
    confidence: float = 0.95,
) -> str:
    """Human-readable ``"p99 = x [lo, hi]"`` string for reports."""
    point, lower, upper = bootstrap_percentile_ci(values, percentile,
                                                  confidence)
    return (f"p{percentile:g} = {point:.4g} "
            f"[{lower:.4g}, {upper:.4g}] @ {confidence:.0%}")
