"""Exception hierarchy for the TailGuard reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A simulation, workload or scheduler configuration is invalid."""


class DistributionError(ReproError):
    """A probability-distribution operation received invalid input."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class AdmissionRejected(ReproError):
    """A query was rejected by admission control.

    Raised by :meth:`repro.core.handler.QueryHandler.submit` when the
    task deadline-miss ratio exceeds the configured threshold.  The
    cluster simulator catches this and counts the query as rejected
    rather than propagating it.
    """


class ExperimentError(ReproError):
    """An experiment definition or its parameters are invalid."""
