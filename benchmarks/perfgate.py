"""The perf gate: a repeatable simulation-kernel benchmark harness.

Every scenario runs a fully pinned configuration (fixed seed, fixed
query count, fixed load) through ``repro.cluster.simulation.simulate``
and reports **events per second** — processed simulation events
(query arrivals + task service starts + fault-layer events) divided by
median wall-clock over ``--repeat`` timed runs after ``--warmup``
untimed ones.  Pinned seeds make the *work* identical run to run, so
the only noise left is the machine's.

Usage::

    PYTHONPATH=src python benchmarks/perfgate.py            # full gate
    PYTHONPATH=src python benchmarks/perfgate.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perfgate.py --rebaseline

The full gate writes ``benchmarks/results/BENCH_perfgate.json``:
per-scenario current numbers, the stored baseline (captured with
``--rebaseline`` on the pre-overhaul kernels), and the speedup of
current over baseline.  ``--quick`` runs shrunken scenarios, checks
the harness end to end, and touches no files.  See the "perf gate"
section of ``docs/performance.md`` for how to read the output and
when a PR may regress it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster.config import ClusterConfig  # noqa: E402
from repro.cluster.simulation import simulate  # noqa: E402
from repro.experiments.setups import paper_single_class_config  # noqa: E402
from repro.federation import (  # noqa: E402
    FederationConfig,
    simulate_federation,
)
from repro.faults import (  # noqa: E402
    CrashProcess,
    FaultPlan,
    HedgePolicy,
    RetryPolicy,
)
from repro.overload import (  # noqa: E402
    AdaptiveAdmissionPolicy,
    DegradePolicy,
    OverloadPolicy,
)

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_perfgate.json"

#: The headline gate: each scenario here must hold its speedup over the
#: stored baseline.  The ext_scale pair (ISSUE 5 acceptance criterion)
#: and faults_tailguard (ISSUE 7 columnar fault calendar) carry the 2x
#: kernel-overhaul floor; the federation scenario baselines on the
#: composed front-tier + shard-kernel path itself, so its threshold is
#: a plain no-regression guard.
GATE_THRESHOLDS: Dict[str, float] = {
    "ext_scale_n100_tailguard": 2.0,
    "ext_scale_n100_fifo": 2.0,
    "faults_tailguard": 2.0,
    "federation_4x100_tailguard": 0.9,
}
GATE_SCENARIOS = tuple(GATE_THRESHOLDS)


@dataclass(frozen=True)
class Scenario:
    """One pinned benchmark configuration.

    ``build`` may return either a :class:`ClusterConfig` (scored through
    the bare kernel) or a :class:`FederationConfig` (scored through the
    front tier + per-shard kernels); :func:`run_config` dispatches.
    """

    name: str
    build: Callable[[int], object]  #: n_queries -> config
    n_queries: int
    quick_queries: int
    description: str = ""

    def config(self, quick: bool):
        return self.build(self.quick_queries if quick else self.n_queries)


def run_config(config):
    """Simulate a scenario config, normalising to a SimulationResult."""
    if isinstance(config, FederationConfig):
        return simulate_federation(config).merged
    return simulate(config)


def _ext_scale(n_servers: int, policy: str) -> Callable[[int], ClusterConfig]:
    def build(n_queries: int) -> ClusterConfig:
        return paper_single_class_config(
            "masstree", 1.0, policy=policy, n_servers=n_servers,
            n_queries=n_queries, seed=1,
        ).at_load(0.7)
    return build


def _faults(n_queries: int) -> ClusterConfig:
    plan = FaultPlan(
        crashes=CrashProcess(mtbf_ms=60.0, mttr_ms=4.0, seed=3),
        retry=RetryPolicy(max_retries=2, backoff_ms=0.531),
        hedge=HedgePolicy(delay_ms=3.313, max_hedges=1),
    )
    return paper_single_class_config(
        "masstree", 1.0, policy="tailguard", n_servers=100,
        n_queries=n_queries, seed=1,
    ).at_load(0.7).with_faults(plan)


def _overload(n_queries: int) -> ClusterConfig:
    policy = OverloadPolicy(
        admission=AdaptiveAdmissionPolicy(
            target_miss_ratio=0.1, window_tasks=500, window_ms=50.0,
            min_samples=100, ctl_interval_ms=2.0,
        ),
        degrade=DegradePolicy(min_coverage=0.5),
    )
    return paper_single_class_config(
        "masstree", 1.0, policy="tailguard", n_servers=100,
        n_queries=n_queries, seed=1,
    ).at_load(1.2).evolve(overload=policy)


def _federation(n_queries: int) -> FederationConfig:
    shard = paper_single_class_config(
        "masstree", 1.0, policy="tailguard", n_servers=100, seed=1)
    return FederationConfig(
        tuple(shard.with_seed(2 + s) for s in range(4)),
        workload=shard.workload, n_queries=n_queries, seed=1,
        router="jsq",
    ).at_load(0.7)


SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("ext_scale_n100_tailguard", _ext_scale(100, "tailguard"),
                 n_queries=40_000, quick_queries=4_000,
                 description="ext_scale setup, N=100, TF-EDFQ, load 0.7"),
        Scenario("ext_scale_n100_fifo", _ext_scale(100, "fifo"),
                 n_queries=40_000, quick_queries=4_000,
                 description="ext_scale setup, N=100, FIFO, load 0.7"),
        Scenario("ext_scale_n1000_tailguard", _ext_scale(1000, "tailguard"),
                 n_queries=15_000, quick_queries=2_000,
                 description="ext_scale setup, N=1000, TF-EDFQ, load 0.7"),
        Scenario("faults_tailguard", _faults,
                 n_queries=15_000, quick_queries=2_000,
                 description="fault-aware calendar: crashes+retry+hedge"),
        Scenario("overload_tailguard", _overload,
                 n_queries=15_000, quick_queries=2_000,
                 description="overload controller at 1.2x load"),
        Scenario("federation_4x100_tailguard", _federation,
                 n_queries=20_000, quick_queries=2_000,
                 description="4-shard federation, jsq router, TF-EDFQ "
                             "shards, load 0.7"),
    )
}


def count_events(result) -> int:
    """Processed simulation events, derived from kernel-independent
    result counters so old and new kernels are scored identically."""
    events = int(result.latency.size)              # query arrivals
    events += int(result.tasks_total)              # task service starts
    events += int(result.tasks_retried + result.tasks_hedged
                  + result.tasks_cancelled + 2 * result.server_failures)
    return events


def measure(scenario: Scenario, quick: bool, warmup: int,
            repeat: int) -> Dict:
    config = scenario.config(quick)
    for _ in range(warmup):
        run_config(config)
    walls: List[float] = []
    result = None
    # Collector hygiene: a simulation allocates millions of short-lived
    # tuples, so whether a gen-2 collection lands inside a timed run is
    # the dominant noise source.  Collect before, and keep automatic
    # collection off during, each timed run.
    for _ in range(repeat):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = run_config(config)
            walls.append(time.perf_counter() - t0)
        finally:
            gc.enable()
    events = count_events(result)
    wall_median = statistics.median(walls)
    return {
        "description": scenario.description,
        "n_queries": int(result.latency.size),
        "events": events,
        "repeat": repeat,
        "wall_s_median": round(wall_median, 6),
        "wall_s_all": [round(w, 6) for w in walls],
        "events_per_sec": round(events / wall_median, 1),
    }


def _meta(warmup: int, repeat: int) -> Dict:
    """Run metadata, including machine provenance: a speedup headline
    is only interpretable together with the cpu_count/platform it was
    measured on (ISSUE 7 satellite: benchmark honesty)."""
    return {
        "schema": "perfgate/v1",
        "git": _git_rev(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "warmup": warmup,
        "repeat": repeat,
    }


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parents[1],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _measure_all(quick: bool, warmup: int, repeat: int) -> Dict[str, Dict]:
    current: Dict[str, Dict] = {}
    for name, scenario in SCENARIOS.items():
        current[name] = measure(scenario, quick, warmup, repeat)
        print(f"{name:32s} {current[name]['events_per_sec']:>12,.0f} ev/s "
              f"({current[name]['wall_s_median'] * 1e3:8.1f} ms median, "
              f"{current[name]['events']:,} events)")
    return current


def run_measure_json(path: Path, quick: bool, warmup: int,
                     repeat: int) -> int:
    """Measure every scenario and dump the raw numbers to ``path``.

    No gate is applied and ``RESULTS_PATH`` is untouched.  This mode
    exists for A/B protocols (e.g. the alternating-pairs rebaseline in
    docs/performance.md) where an old checkout and the current one are
    measured back to back and compared offline.
    """
    payload = {**_meta(warmup, repeat), "scenarios":
               _measure_all(quick, warmup, repeat)}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    print(f"\nwrote {path}")
    return 0


def run_gate(quick: bool, warmup: int, repeat: int,
             rebaseline: bool) -> int:
    current = _measure_all(quick, warmup, repeat)

    if quick:
        print("\n--quick: harness smoke only; no files written, "
              "no speedup gate applied.")
        return 0

    meta = _meta(warmup, repeat)

    stored = None
    if RESULTS_PATH.exists():
        stored = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))

    if rebaseline:
        payload = {
            **meta,
            "baseline": {"git": meta["git"], "scenarios": current},
            "current": {"git": meta["git"], "scenarios": current},
            "speedup": {name: 1.0 for name in current},
        }
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(payload, indent=1) + "\n",
                                encoding="utf-8")
        print(f"\nbaseline captured at {meta['git']} -> {RESULTS_PATH}")
        return 0

    if stored is None or "baseline" not in stored:
        print("\nno stored baseline; run --rebaseline first", file=sys.stderr)
        return 2

    baseline = stored["baseline"]
    speedup = {}
    for name, record in current.items():
        base = baseline["scenarios"].get(name)
        if base is None:
            continue
        speedup[name] = round(
            record["events_per_sec"] / base["events_per_sec"], 3)
    payload = {
        **meta,
        "baseline": baseline,
        "current": {"git": meta["git"], "scenarios": current},
        "speedup": speedup,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=1) + "\n",
                            encoding="utf-8")

    print(f"\nspeedup vs baseline ({baseline['git']}):")
    failed = []
    for name, value in sorted(speedup.items()):
        threshold = GATE_THRESHOLDS.get(name)
        marker = ""
        if threshold is not None:
            marker = "  [gate >= %.1fx]" % threshold
            if value < threshold:
                marker += "  FAIL"
                failed.append(f"{name} ({value:.2f}x < {threshold:.1f}x)")
        print(f"  {name:32s} {value:6.2f}x{marker}")
    print(f"\nwrote {RESULTS_PATH}")
    if failed:
        print(f"perf gate FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrunken scenarios, no file output (CI smoke)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed runs per scenario (default 1)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timed runs per scenario; median wins (default 5)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="store the current numbers as the baseline")
    parser.add_argument("--measure-json", type=Path, default=None,
                        metavar="PATH",
                        help="measure all scenarios and dump raw numbers "
                             "to PATH; no gate, BENCH file untouched")
    args = parser.parse_args(argv)
    if args.quick:
        args.warmup = min(args.warmup, 1)
        args.repeat = min(args.repeat, 2)
    if args.measure_json is not None:
        return run_measure_json(args.measure_json, args.quick,
                                args.warmup, args.repeat)
    return run_gate(args.quick, args.warmup, args.repeat, args.rebaseline)


if __name__ == "__main__":
    raise SystemExit(main())
