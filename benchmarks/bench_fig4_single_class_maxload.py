"""Fig. 4: single-class maximum loads, TailGuard vs FIFO.

Regenerates the figure's bars for all three workloads and four SLOs.
Expected shape (paper §IV.B): TailGuard sustains a higher load than
FIFO at every SLO, with the gain largest at the tightest SLOs.
"""

from repro.experiments.paper import fig4_single_class_maxload

#: Tolerance for "TailGuard >= FIFO": one bisection step of slack
#: absorbs p99 noise at the feasibility boundary.
SLACK = 0.015


def run():
    return fig4_single_class_maxload(n_queries=40_000, tol=0.01, seeds=(1,))


def test_fig4_single_class_maxload(benchmark, record_report):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)

    wins = 0
    comparisons = 0
    for workload in ("masstree", "shore", "xapian"):
        rows = report.select(workload=workload)
        slos = sorted({row["slo_ms"] for row in rows})
        for slo in slos:
            tailguard = next(r["max_load"] for r in rows
                             if r["slo_ms"] == slo
                             and r["policy"] == "tailguard")
            fifo = next(r["max_load"] for r in rows
                        if r["slo_ms"] == slo and r["policy"] == "fifo")
            comparisons += 1
            assert tailguard >= fifo - SLACK, (workload, slo, tailguard, fifo)
            if tailguard > fifo + SLACK:
                wins += 1
    # TailGuard must strictly win in at least half of the settings (at
    # the loosest SLOs the policies converge, as in the paper where the
    # gain grows as the SLO tightens).
    assert wins >= comparisons * 0.5, f"only {wins}/{comparisons} clear wins"

    # The paper's headline: the gain is largest at the tightest SLO.
    for workload in ("masstree", "xapian"):
        rows = report.select(workload=workload)
        slos = sorted({row["slo_ms"] for row in rows})
        gains = []
        for slo in (slos[0], slos[-1]):
            tailguard = next(r["max_load"] for r in rows
                             if r["slo_ms"] == slo
                             and r["policy"] == "tailguard")
            fifo = next(r["max_load"] for r in rows
                        if r["slo_ms"] == slo and r["policy"] == "fifo")
            gains.append(tailguard - fifo)
        assert gains[0] >= gains[-1] - SLACK, (workload, gains)
