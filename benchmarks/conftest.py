"""Benchmark-suite plumbing.

Every benchmark regenerates one of the paper's tables/figures and
records an :class:`~repro.experiments.report.ExperimentReport`.  Reports
are printed in the terminal summary (so ``pytest benchmarks/
--benchmark-only`` shows the reproduced tables even with output
capture on) and persisted under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

import pytest

from repro.experiments.report import ExperimentReport

_RESULTS_DIR = Path(__file__).parent / "results"
_collected: List[ExperimentReport] = []


@pytest.fixture
def record_report():
    """Record a report for terminal-summary printing and persistence."""

    def _record(report: ExperimentReport) -> ExperimentReport:
        _collected.append(report)
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{report.experiment_id}.txt"
        path.write_text(report.format_table() + "\n", encoding="utf-8")
        return report

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("Reproduced tables and figures "
                                "(also saved under benchmarks/results/)")
    terminalreporter.write_line("=" * 72)
    for report in _collected:
        terminalreporter.write_line("")
        for line in report.format_table().splitlines():
            terminalreporter.write_line(line)
