"""Fig. 6: OLDI two-class tail-latency-vs-load curves + max loads.

Expected shape (paper §IV.C): FIFO is limited by class I (class-blind),
PRIQ by class II (starves the low class), and TailGuard balances the
two classes so its max loads per class sit within a few percent of each
other and its overall max load is the highest.
"""

import numpy as np

from repro.experiments.paper import fig6_summary_maxload, fig6_two_class_sweep

LOADS = tuple(np.arange(0.20, 0.651, 0.05))
SLACK = 0.02


def run_sweep():
    return fig6_two_class_sweep(loads=LOADS, n_queries=8_000)


def run_summary():
    return fig6_summary_maxload(n_queries=8_000, tol=0.01)


def test_fig6_two_class_sweep(benchmark, record_report):
    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_report(report)

    # Tails are (approximately) monotone in load for every curve.
    for workload in ("masstree", "shore", "xapian"):
        for policy in ("tailguard", "fifo", "priq"):
            for class_name in ("class-I", "class-II"):
                rows = report.select(workload=workload, policy=policy,
                                     class_name=class_name)
                tails = [row["p99_ms"] for row in
                         sorted(rows, key=lambda r: r["load"])]
                assert tails[-1] > tails[0], (workload, policy, class_name)

    # PRIQ keeps class I far below class II at high load.
    for workload in ("masstree", "shore", "xapian"):
        high_load = max(row["load"] for row in report.rows)
        rows = report.select(workload=workload, policy="priq",
                             load=high_load)
        tails = {row["class_name"]: row["p99_ms"] for row in rows}
        assert tails["class-I"] < tails["class-II"], (workload, tails)


def test_fig6_summary_maxload(benchmark, record_report):
    report = benchmark.pedantic(run_summary, rounds=1, iterations=1)
    record_report(report)

    for workload in ("masstree", "shore", "xapian"):
        loads = {row["policy"]: row["max_load"]
                 for row in report.select(workload=workload)}
        assert loads["tailguard"] >= loads["fifo"] - SLACK, (workload, loads)
        assert loads["tailguard"] >= loads["priq"] - SLACK, (workload, loads)
