"""§IV.D extensions: cluster size N=1000 and four service classes.

The paper states both variants are "consistent with" the headline
results: TailGuard's advantage over the baselines persists.
"""

from repro.experiments.extensions import ext_four_classes, ext_scale_n1000

SLACK = 0.02


def run_scale():
    return ext_scale_n1000(n_queries=40_000, tol=0.01)


def run_classes():
    return ext_four_classes(n_queries=40_000, tol=0.01)


def test_ext_scale_n1000(benchmark, record_report):
    report = benchmark.pedantic(run_scale, rounds=1, iterations=1)
    record_report(report)

    for n_servers in (100, 1000):
        loads = {row["policy"]: row["max_load"]
                 for row in report.select(n_servers=n_servers)}
        assert loads["tailguard"] >= loads["fifo"] - SLACK, (n_servers, loads)


def test_ext_four_classes(benchmark, record_report):
    report = benchmark.pedantic(run_classes, rounds=1, iterations=1)
    record_report(report)

    loads = {row["policy"]: row["max_load"] for row in report.rows}
    # Deadline-based policies dominate class-based/blind ones clearly...
    assert loads["tailguard"] >= loads["priq"] - SLACK, loads
    assert loads["tailguard"] >= loads["fifo"] - SLACK, loads
    assert loads["t-edf"] >= loads["priq"] - SLACK, loads
    # ...and TailGuard and T-EDFQ are near-equivalent here: four classes
    # make the SLO spread dominate Masstree's 0.25 ms fanout-tail spread.
    assert abs(loads["tailguard"] - loads["t-edf"]) <= 0.05, loads
