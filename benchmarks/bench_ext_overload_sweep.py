"""Overload-protection headline benchmark.

Runs the full ``ext_overload_sweep`` grid and checks the robustness
headline in ``docs/overload.md``: find the *reject-only max load* (the
largest swept load where adaptive admission alone still meets the p99
SLO while rejecting under 1% of queries), then demand that at a load at
least 1.5x past it, ``degrade+breakers`` (a) still meets the p99 SLO
and (b) serves strictly more successful — full or partial — queries
than reject-only, both in total and within-SLO counts.  The verified
numbers are written to ``benchmarks/results/BENCH_overload_sweep.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.extensions import ext_overload_sweep

_RESULTS_PATH = (Path(__file__).parent / "results"
                 / "BENCH_overload_sweep.json")

#: Reject-only serves "essentially all" traffic below this rejection
#: ratio — the max-load criterion alongside meeting the SLO.
_FULL_SERVICE_REJECTION = 0.01
_HEADLINE_FACTOR = 1.5


def test_overload_sweep_headline(record_report):
    report = ext_overload_sweep(workers=2)
    record_report(report)

    by_mode = {mode: sorted(report.select(mode=mode),
                            key=lambda row: row["load"])
               for mode in ("reject-only", "degrade", "degrade+breakers")}

    # Reject-only max load: largest load meeting the SLO with < 1%
    # rejections (i.e. its full-service capacity).
    full_service = [row for row in by_mode["reject-only"]
                    if row["meets_slo"]
                    and row["rejection_ratio"] < _FULL_SERVICE_REJECTION]
    assert full_service, "reject-only never met the SLO at full service"
    max_load = max(row["load"] for row in full_service)

    # The headline row: the smallest swept load >= 1.5x that capacity.
    headline_loads = [row["load"] for row in by_mode["reject-only"]
                      if row["load"] >= _HEADLINE_FACTOR * max_load]
    assert headline_loads, "sweep has no load >= 1.5x reject-only max load"
    headline_load = min(headline_loads)
    reject = next(row for row in by_mode["reject-only"]
                  if row["load"] == headline_load)
    robust = next(row for row in by_mode["degrade+breakers"]
                  if row["load"] == headline_load)

    # The claim: past reject-only's capacity, degradation + breakers
    # still holds the p99 SLO and serves strictly more queries.
    assert robust["meets_slo"], robust
    assert robust["served"] > reject["served"], (robust, reject)
    assert robust["served_slo"] > reject["served_slo"], (robust, reject)
    # Non-vacuity: the robust mode actually degraded and shed work.
    assert robust["degraded_queries"] > 0 and robust["shed_tasks"] > 0
    assert robust["breaker_trips"] > 0

    payload = {
        "benchmark": "overload_sweep",
        "parameters": report.parameters,
        "reject_only_max_load": max_load,
        "headline_load": headline_load,
        "headline_factor": round(headline_load / max_load, 3),
        "headline": {
            "reject-only": reject,
            "degrade+breakers": robust,
        },
        "rows": report.rows,
    }
    _RESULTS_PATH.parent.mkdir(exist_ok=True)
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")
