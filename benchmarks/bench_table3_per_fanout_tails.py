"""Table III: per-fanout 99th tails at maximum load (Masstree).

Expected shape: the fanout-100 type is the binding constraint for both
policies (its tail sits at the SLO), and TailGuard's per-type tails are
closer together than FIFO's (more balanced resource allocation).
"""

from repro.experiments.paper import table3_per_fanout_tails


def run():
    return table3_per_fanout_tails(
        slos_ms=(0.8, 1.0, 1.2, 1.4),
        n_queries=80_000,
        search_queries=40_000,
        tol=0.01,
    )


def test_table3_per_fanout_tails(benchmark, record_report):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)

    for slo in (0.8, 1.0, 1.2, 1.4):
        spreads = {}
        for policy in ("fifo", "tailguard"):
            rows = report.select(slo_ms=slo, policy=policy)
            tails = {row["fanout"]: row["p99_ms"] for row in rows}
            # At its max load the binding type's tail is close to the SLO.
            assert max(tails.values()) <= slo * 1.15, (slo, policy, tails)
            spreads[policy] = max(tails.values()) - min(tails.values())
        # TailGuard equalizes the types more than FIFO.
        assert spreads["tailguard"] <= spreads["fifo"] * 1.1, (slo, spreads)
