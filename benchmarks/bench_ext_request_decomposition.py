"""Eq. 7 extension: request-level budget assignment strategies.

Expected shape: at a load comfortably inside capacity every
budget-conserving assignment meets the request SLO (Eq. 7's guarantee);
near capacity the equal split yields the lowest request p99 (matching
the paper's equal-budget minimality argument) and the naive slo-split
is worst.
"""

from repro.experiments.extensions import ext_request_decomposition


def run():
    return ext_request_decomposition(loads=(0.30, 0.40), n_requests=2_500)


def test_ext_request_decomposition(benchmark, record_report):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)

    low_load = min(row["load"] for row in report.rows)
    high_load = max(row["load"] for row in report.rows)

    for row in report.select(load=low_load):
        if row["strategy"] in ("equal", "proportional"):
            assert row["meets_slo"], row

    tails = {row["strategy"]: row["p99_ms"]
             for row in report.select(load=high_load)}
    assert tails["equal"] <= tails["slo-split"] * 1.02, tails
