"""Fig. 9: the heterogeneous SaS testbed (paper §IV.E).

(a) the per-cluster post-queuing CDF statistics match the published
numbers; (b-d) per-class p99 vs Server-room load for the four policies;
and the headline max Server-room loads, whose expected ordering is
TailGuard > T-EDFQ > FIFO/PRIQ with smaller relative gains than the
homogeneous simulation (paper: 48/42/38/36 %).
"""

import numpy as np

from repro.experiments.sas_experiments import (
    fig9_sas_testbed,
    fig9_summary_maxload,
    fig9a_cluster_cdfs,
)

LOADS = tuple(np.arange(0.20, 0.551, 0.05))
SLACK = 0.02


def test_fig9a_cluster_cdfs(benchmark, record_report):
    report = benchmark.pedantic(fig9a_cluster_cdfs, rounds=1, iterations=1)
    record_report(report)
    for row in report.rows:
        relative_error = abs(row["model_ms"] - row["paper_ms"]) / row["paper_ms"]
        assert relative_error < 0.005, row


def run_sweep():
    return fig9_sas_testbed(loads=LOADS, n_queries=20_000)


def run_summary():
    return fig9_summary_maxload(n_queries=20_000, tol=0.01)


def test_fig9_sas_sweep(benchmark, record_report):
    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_report(report)

    # Each class's tail grows with load under every policy.
    for policy in ("tailguard", "fifo", "priq", "t-edf"):
        for class_name in ("class-A", "class-B", "class-C"):
            rows = sorted(report.select(policy=policy,
                                        class_name=class_name),
                          key=lambda r: r["server_room_load"])
            assert rows[-1]["p99_ms"] > rows[0]["p99_ms"], (policy,
                                                            class_name)

    # At the lowest load every policy meets every SLO.
    low = min(row["server_room_load"] for row in report.rows)
    for row in report.rows:
        if row["server_room_load"] == low:
            assert row["meets_slo"], row


def test_fig9_summary_maxload(benchmark, record_report):
    report = benchmark.pedantic(run_summary, rounds=1, iterations=1)
    record_report(report)

    loads = {row["policy"]: row["max_load"] for row in report.rows}
    assert loads["tailguard"] >= loads["fifo"] - SLACK, loads
    assert loads["tailguard"] >= loads["priq"] - SLACK, loads
    assert loads["tailguard"] >= loads["t-edf"] - SLACK, loads
