"""Fig. 3: reconstructed Tailbench service-time CDFs.

Regenerates the CDF statistics of the three workloads and checks them
against every anchor the paper publishes.
"""

from repro.experiments.paper import fig3_workload_cdfs


def test_fig3_workload_cdfs(benchmark, record_report):
    report = benchmark.pedantic(fig3_workload_cdfs, rounds=1, iterations=1)
    record_report(report)

    # Every published anchor (mean, p95, p99) is matched closely.
    for row in report.rows:
        if row["statistic"] in ("mean", "p95", "p99"):
            relative_error = (abs(row["model_ms"] - row["paper_ms"])
                              / row["paper_ms"])
            assert relative_error < 0.01, row
