"""Ablations: mis-estimated CDFs, online updating, admission threshold.

These cover design choices DESIGN.md calls out:

* §IV.E stress concern — how sensitive is TailGuard to wrong CDFs?
* §III.B.2 — does the online updating process recover accuracy on a
  heterogeneous cluster from a wrong homogeneous start?
* §III.C — how does the admission threshold trade shed load against
  SLO safety under overload?
"""

from repro.experiments.extensions import (
    ablation_admission_threshold,
    ablation_inaccurate_cdf,
    ablation_online_updating,
    ablation_server_slowdown,
)


def test_ablation_inaccurate_cdf(benchmark, record_report):
    report = benchmark.pedantic(
        lambda: ablation_inaccurate_cdf(n_queries=40_000, tol=0.01),
        rounds=1, iterations=1,
    )
    record_report(report)

    loads = {row["estimate"]: row["max_load"] for row in report.rows}
    exact = loads["scaled-1.0"]
    # Uniform scale errors barely move the max load.
    for label, load in loads.items():
        if label.startswith("scaled-"):
            assert abs(load - exact) <= 0.04, (label, load, exact)
    # A tail-free estimate loses the fanout gain (degenerates to T-EDFQ)
    # but still sustains substantial load.
    assert loads["point-mass"] <= exact + 0.02, loads
    assert loads["point-mass"] > exact * 0.7, loads
    # A heavier-tailed estimate is harmless.
    assert loads["exp-fit"] >= exact - 0.02, loads


def test_ablation_online_updating(benchmark, record_report):
    report = benchmark.pedantic(
        lambda: ablation_online_updating(n_queries=30_000),
        rounds=1, iterations=1,
    )
    record_report(report)

    # Online behaviour converges to the oracle's: per-class tails match
    # within 10%.
    for class_name in ("class-I", "class-II"):
        by_mode = {row["estimator"]: row["p99_ms"]
                   for row in report.select(class_name=class_name)}
        assert abs(by_mode["online"] - by_mode["oracle"]) \
            / by_mode["oracle"] < 0.10, by_mode


def test_ablation_server_slowdown(benchmark, record_report):
    report = benchmark.pedantic(
        lambda: ablation_server_slowdown(n_queries=40_000),
        rounds=1, iterations=1,
    )
    record_report(report)

    during = {row["scheduler"]: row["p99_class1_ms"]
              for row in report.select(phase="during")}
    # TailGuard absorbs the rack slowdown better than FIFO during the
    # transient; online updating does not do worse than static.
    assert during["tailguard-static"] <= during["fifo"] * 1.02, during
    assert during["tailguard-online"] <= during["tailguard-static"] * 1.05, \
        during


def test_ablation_admission_threshold(benchmark, record_report):
    report = benchmark.pedantic(
        lambda: ablation_admission_threshold(n_queries=20_000),
        rounds=1, iterations=1,
    )
    record_report(report)

    rows = sorted(report.rows, key=lambda r: r["threshold"])
    # Looser thresholds shed less load.
    rejection = [row["rejection_ratio"] for row in rows]
    assert rejection[0] >= rejection[-1] - 0.02, rejection
    # The calibrated threshold keeps both SLOs.
    calibrated = rows[1]
    assert calibrated["meets_both"], calibrated
