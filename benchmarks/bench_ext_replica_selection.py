"""Replica selection under hot shards (extension).

Expected shape: least-loaded (power-of-choices) replica selection
yields far lower tails than uniform random selection at every load,
and the gap widens as load grows; queue-ordering policy barely matters
in this single-class, narrow-fanout setting (orthogonal mechanisms).
"""

from repro.experiments.extensions import ext_replica_selection


def run():
    return ext_replica_selection(n_queries=25_000)


def test_ext_replica_selection(benchmark, record_report):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)

    loads = sorted({row["load"] for row in report.rows})
    for policy in ("fifo", "tailguard"):
        for load in loads:
            random_tail = next(
                r["p99_ms"] for r in report.rows
                if r["policy"] == policy and r["selection"] == "random"
                and r["load"] == load
            )
            balanced_tail = next(
                r["p99_ms"] for r in report.rows
                if r["policy"] == policy and r["selection"] == "least-loaded"
                and r["load"] == load
            )
            assert balanced_tail < random_tail, (policy, load)

    # The *absolute* tail saving grows with load (at deep overload the
    # hot servers saturate under both selections, so the ratio can
    # shrink even as the saved milliseconds explode).
    def gap_ms(load):
        random_tail = next(r["p99_ms"] for r in report.rows
                           if r["policy"] == "tailguard"
                           and r["selection"] == "random"
                           and r["load"] == load)
        balanced_tail = next(r["p99_ms"] for r in report.rows
                             if r["policy"] == "tailguard"
                             and r["selection"] == "least-loaded"
                             and r["load"] == load)
        return random_tail - balanced_tail

    assert gap_ms(loads[-1]) > gap_ms(loads[0])
