"""Replica selection + adaptive-hedging frontier (extension).

Expected shape, part 1: least-loaded (power-of-choices) replica
selection yields far lower tails than uniform random selection at every
load, and the gap widens as load grows; queue-ordering policy barely
matters in this single-class, narrow-fanout setting (orthogonal
mechanisms).

Expected shape, part 2 (the headline frontier): on the straggler-heavy
cluster at a load where fixed-delay hedging amplifies overload, the
budgeted adaptive hedge controller meets or beats the fixed-delay p99
at its own base delay (and at twice it) while spending a strictly lower
duplicate-load fraction than *every* fixed-delay setting.  The verified
frontier numbers are written to
``benchmarks/results/BENCH_replica_selection.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.extensions import ext_replica_selection

_RESULTS_PATH = (Path(__file__).parent / "results"
                 / "BENCH_replica_selection.json")


def run():
    return ext_replica_selection(n_queries=25_000)


def test_ext_replica_selection(benchmark, record_report):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)

    sharded = [r for r in report.rows
               if r["selection"] in ("random", "least-loaded")]
    loads = sorted({row["load"] for row in sharded})
    for policy in ("fifo", "tailguard"):
        for load in loads:
            random_tail = next(
                r["p99_ms"] for r in sharded
                if r["policy"] == policy and r["selection"] == "random"
                and r["load"] == load
            )
            balanced_tail = next(
                r["p99_ms"] for r in sharded
                if r["policy"] == policy and r["selection"] == "least-loaded"
                and r["load"] == load
            )
            assert balanced_tail < random_tail, (policy, load)

    # The *absolute* tail saving grows with load (at deep overload the
    # hot servers saturate under both selections, so the ratio can
    # shrink even as the saved milliseconds explode).
    def gap_ms(load):
        random_tail = next(r["p99_ms"] for r in sharded
                           if r["policy"] == "tailguard"
                           and r["selection"] == "random"
                           and r["load"] == load)
        balanced_tail = next(r["p99_ms"] for r in sharded
                             if r["policy"] == "tailguard"
                             and r["selection"] == "least-loaded"
                             and r["load"] == load)
        return random_tail - balanced_tail

    assert gap_ms(loads[-1]) > gap_ms(loads[0])

    # ------------------------------------------------------------------
    # The frontier headline: adaptive hedging meets or beats fixed-delay
    # p99 at a strictly lower duplicate-load fraction.
    # ------------------------------------------------------------------
    fixed = [r for r in report.rows
             if r["selection"].startswith("hedge-fixed")]
    adaptive = next(r for r in report.rows
                    if r["selection"] == "hedge-adaptive")
    assert fixed, "frontier rows missing"

    # Strictly lower duplicate load than EVERY fixed-delay setting.
    for row in fixed:
        assert adaptive["duplicate_load"] < row["duplicate_load"], (
            adaptive, row)
    # Meets or beats the p99 of the fixed baselines at the same base
    # delay and at twice it (the aggressive settings whose duplicate
    # load melts the cluster down).
    for factor in (1.0, 2.0):
        baseline = next(r for r in fixed
                        if r["hedge_delay_factor"] == factor)
        assert adaptive["p99_ms"] <= baseline["p99_ms"], (adaptive, baseline)
    # Non-vacuity: fixed hedging at the base delay really was in the
    # amplification regime (duplicates rival base launches).
    base_row = next(r for r in fixed if r["hedge_delay_factor"] == 1.0)
    assert base_row["duplicate_load"] > 0.5, base_row

    _RESULTS_PATH.parent.mkdir(exist_ok=True)
    _RESULTS_PATH.write_text(json.dumps({
        "benchmark": "replica_selection",
        "parameters": report.parameters,
        "frontier": {
            "fixed": sorted(
                ({"delay_factor": r["hedge_delay_factor"],
                  "p99_ms": r["p99_ms"],
                  "duplicate_load": r["duplicate_load"]} for r in fixed),
                key=lambda r: r["delay_factor"]),
            "adaptive": {"p99_ms": adaptive["p99_ms"],
                         "duplicate_load": adaptive["duplicate_load"],
                         "final_delay_factor":
                             adaptive["hedge_delay_factor"]},
        },
        "rows": report.rows,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
