"""Fig. 5: two-class maximum loads under Poisson and Pareto arrivals.

Expected shape (paper §IV.B): with two classes TailGuard beats FIFO,
PRIQ and T-EDFQ; the ordering is TailGuard >= T-EDFQ >= PRIQ-or-FIFO;
Pareto (burstier) arrivals lower every policy's max load without
reordering the policies.
"""

import numpy as np

from repro.experiments.paper import fig5_two_class_maxload

SLACK = 0.02


def run():
    return fig5_two_class_maxload(n_queries=30_000, tol=0.01, seeds=(1,))


def test_fig5_two_class_maxload(benchmark, record_report):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)

    for arrival in ("poisson", "pareto"):
        rows = report.select(arrival=arrival)
        slos = sorted({row["slo_high_ms"] for row in rows})
        for slo in slos:
            loads = {
                row["policy"]: row["max_load"]
                for row in rows if row["slo_high_ms"] == slo
            }
            assert loads["tailguard"] >= loads["fifo"] - SLACK, (arrival, slo)
            assert loads["tailguard"] >= loads["priq"] - SLACK, (arrival, slo)
            assert loads["tailguard"] >= loads["t-edf"] - SLACK, (arrival, slo)

    # Burstiness costs load on average, for every policy.
    for policy in ("tailguard", "fifo", "priq", "t-edf"):
        poisson_avg = np.mean([row["max_load"] for row in
                               report.select(arrival="poisson",
                                             policy=policy)])
        pareto_avg = np.mean([row["max_load"] for row in
                              report.select(arrival="pareto",
                                            policy=policy)])
        assert pareto_avg <= poisson_avg + SLACK, (policy, poisson_avg,
                                                   pareto_avg)
