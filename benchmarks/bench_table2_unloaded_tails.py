"""Table II: mean service times and unloaded 99th query tails.

The order-statistics identities (Eq. 1-2) applied to the reconstructed
workload models must return the paper's Table II numbers.
"""

from repro.experiments.paper import table2_unloaded_tails


def test_table2_unloaded_tails(benchmark, record_report):
    report = benchmark.pedantic(table2_unloaded_tails, rounds=1, iterations=1)
    record_report(report)

    for row in report.rows:
        relative_error = abs(row["model_ms"] - row["paper_ms"]) / row["paper_ms"]
        assert relative_error < 0.005, (
            f"{row['workload']} {row['quantity']}: model {row['model_ms']} "
            f"vs paper {row['paper_ms']}"
        )
