"""Arrival-burstiness sensitivity (extension of Fig. 5b).

Expected shape: burstier arrival processes (Pareto renewal, correlated
MMPP) lower every policy's max load; the policy ordering — TailGuard
first — is preserved under all three processes.
"""

from repro.experiments.extensions import ext_arrival_burstiness

SLACK = 0.02


def run():
    return ext_arrival_burstiness(n_queries=40_000, tol=0.01)


def test_ext_arrival_burstiness(benchmark, record_report):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)

    for arrival in ("poisson", "pareto", "mmpp"):
        loads = {row["policy"]: row["max_load"]
                 for row in report.select(arrival=arrival)}
        assert loads["tailguard"] >= loads["fifo"] - SLACK, (arrival, loads)
        assert loads["tailguard"] >= loads["priq"] - SLACK, (arrival, loads)

    # Burstiness costs capacity for every policy.
    for policy in ("tailguard", "fifo", "priq", "t-edf"):
        poisson = next(r["max_load"] for r in
                       report.select(arrival="poisson", policy=policy))
        mmpp = next(r["max_load"] for r in
                    report.select(arrival="mmpp", policy=policy))
        assert mmpp <= poisson + SLACK, (policy, poisson, mmpp)
