"""Wall-clock benchmark of the parallel experiment runner.

Times a fixed fig4-style max-load grid (masstree, tailguard + fifo,
two seeds) serially and with 2/4 worker processes, checks the results
are identical across worker counts, and micro-benchmarks the
vectorized deadline stamping against the per-query Python loop it
replaced.  Everything is written to
``benchmarks/results/BENCH_parallel_runner.json``.

Honesty note: the speedup columns are only meaningful relative to
``cpu_count`` (recorded in the JSON).  On a box with fewer cores than
the widest worker setting the processes time-slice and the parallel
runs cannot beat serial — the payload then carries
``"parallel_valid": false`` and *no* ``speedup_vs_serial`` headline at
all, so a dashboard can never quote a time-sliced "speedup".  Wall
clocks are still recorded so the determinism claim and pool overhead
stay measured.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.deadline import DeadlineEstimator
from repro.experiments import find_max_load
from repro.experiments.setups import paper_single_class_config
from repro.types import ServiceClass
from repro.workloads import get_workload

_RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_parallel_runner.json"

#: The fixed grid: every (policy, workers) cell runs this exact search.
_GRID = dict(lo=0.2, hi=0.7, tol=0.02, seeds=(1, 2))
_POLICIES = ("tailguard", "fifo")
_WORKER_SETTINGS = (None, 2, 4)
_N_QUERIES = 4_000


def _run_grid(workers):
    """One full grid pass; returns (elapsed_s, {policy: max_load})."""
    outcomes = {}
    start = time.perf_counter()
    for policy in _POLICIES:
        config = paper_single_class_config("masstree", 0.8, policy=policy,
                                           n_queries=_N_QUERIES)
        outcomes[policy] = find_max_load(config, workers=workers,
                                         **_GRID).max_load
    return time.perf_counter() - start, outcomes


def _deadline_stamping_microbench(n_queries: int = 50_000):
    """Per-query ``estimator.deadline`` loop vs the hoisted gather.

    This mirrors what ``simulate()`` does on the homogeneous fast
    path: the old code called ``estimator.deadline`` once per query;
    the new code builds one budget per distinct (class, fanout) pair
    via ``budget_table`` and gathers it with ``np.unique``.
    """
    bench = get_workload("masstree")
    n = 100
    estimator = DeadlineEstimator(bench.service_time, n_servers=n)
    classes = [ServiceClass("single", 0.8)]
    rng = np.random.default_rng(1)
    class_index = np.zeros(n_queries, dtype=np.int64)
    fanout = rng.choice([1, 10, 100], size=n_queries).astype(np.int64)
    arrivals = np.cumsum(rng.exponential(0.01, size=n_queries))

    start = time.perf_counter()
    loop_deadlines = [
        estimator.deadline(arrivals[i], classes[class_index[i]],
                           fanout=int(fanout[i]))
        for i in range(n_queries)
    ]
    loop_s = time.perf_counter() - start

    start = time.perf_counter()
    codes = class_index * (n + 1) + fanout
    uniq_codes, inverse = np.unique(codes, return_inverse=True)
    budget_by_code = {}
    for code in uniq_codes:
        ci, k = divmod(int(code), n + 1)
        budget_by_code[int(code)] = estimator.budget_table(
            classes[ci], [k])[k]
    table = np.array([budget_by_code[int(code)] for code in uniq_codes])
    budgets = table[inverse]
    gather_deadlines = (arrivals + budgets).tolist()
    gather_s = time.perf_counter() - start

    assert np.allclose(loop_deadlines, gather_deadlines)
    return {
        "n_queries": n_queries,
        "python_loop_s": round(loop_s, 4),
        "vectorized_gather_s": round(gather_s, 4),
        "speedup": round(loop_s / gather_s, 2),
    }


def test_parallel_runner_wall_clock(record_report):
    del record_report  # timings go to JSON, not a report table
    timings = {}
    outcomes = {}
    for workers in _WORKER_SETTINGS:
        label = "serial" if workers is None else f"workers{workers}"
        timings[label], outcomes[label] = _run_grid(workers)

    identical = all(out == outcomes["serial"] for out in outcomes.values())
    cpu_count = os.cpu_count() or 1
    max_workers = max(w for w in _WORKER_SETTINGS if w is not None)
    # A speedup headline measured with more workers than cores is a
    # time-slicing artifact, not a speedup: refuse to emit one.
    parallel_valid = cpu_count >= max_workers
    payload = {
        "benchmark": "parallel_runner",
        "cpu_count": cpu_count,
        "platform": platform.platform(),
        "parallel_valid": parallel_valid,
        "grid": {
            "workloads": ["masstree"],
            "policies": list(_POLICIES),
            "slo_ms": 0.8,
            "n_queries": _N_QUERIES,
            **{k: v if not isinstance(v, tuple) else list(v)
               for k, v in _GRID.items()},
        },
        "wall_clock_s": {k: round(v, 3) for k, v in timings.items()},
        "max_loads": outcomes["serial"],
        "identical_results": identical,
        "deadline_stamping_microbench": _deadline_stamping_microbench(),
    }
    if parallel_valid:
        payload["speedup_vs_serial"] = {
            k: round(timings["serial"] / v, 3)
            for k, v in timings.items() if k != "serial"
        }
    else:
        payload["speedup_vs_serial_refused"] = (
            f"cpu_count={cpu_count} < workers={max_workers}: parallel "
            "runs time-slice; wall clocks recorded, headline withheld")
    _RESULTS_PATH.parent.mkdir(exist_ok=True)
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")
    assert identical, f"worker counts disagreed: {outcomes}"


if __name__ == "__main__":
    test_parallel_runner_wall_clock(lambda r: r)
