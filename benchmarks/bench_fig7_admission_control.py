"""Fig. 7: TailGuard with query admission control (Masstree OLDI).

Expected shape (paper §IV.D): both class SLOs are guaranteed at every
offered load, no load is shed below the maximum acceptable load, and
beyond it the accepted load stays a bounded distance below the maximum
acceptable load instead of collapsing.
"""

import numpy as np

from repro.experiments.paper import fig7_admission_control

LOADS = tuple(np.arange(0.44, 0.701, 0.02))


def run():
    return fig7_admission_control(
        offered_loads=LOADS,
        n_queries=20_000,
        maxload_queries=12_000,
        tol=0.01,
    )


def test_fig7_admission_control(benchmark, record_report):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(report)

    max_acceptable = report.parameters["max_acceptable_load"]
    slo1, slo2 = 1.0, 1.5

    for row in report.rows:
        # SLO guarantee at every offered load (small tolerance for the
        # percentile noise of a 20k-query run).
        assert row["p99_class1_ms"] <= slo1 * 1.07, row
        assert row["p99_class2_ms"] <= slo2 * 1.07, row

    # Below the max acceptable load, (almost) nothing is rejected.
    for row in report.rows:
        if row["offered_load"] <= max_acceptable - 0.05:
            assert row["rejection_ratio"] < 0.10, row

    # Above it, the accepted load does not collapse.
    overloaded = [row for row in report.rows
                  if row["offered_load"] >= max_acceptable + 0.04]
    if overloaded:
        worst = min(row["accepted_load"] for row in overloaded)
        assert worst >= max_acceptable * 0.60, (max_acceptable, worst)
