"""Micro-benchmarks of the core primitives (true timing benchmarks).

The paper claims TailGuard is lightweight: deadline estimation is a
cached lookup plus an addition and queue management is a single EDF
queue.  These benchmarks quantify the per-operation cost and the
simulator's throughput.
"""

import numpy as np

from repro.cluster import ClusterConfig, simulate
from repro.core.deadline import DeadlineEstimator
from repro.core.policies import EDFTaskQueue, FIFOTaskQueue, get_policy
from repro.types import ServiceClass
from repro.workloads import (
    PoissonArrivals,
    Workload,
    get_workload,
    inverse_proportional_fanout,
    single_class_mix,
)


def test_deadline_estimation_cached(benchmark):
    """Eq. 6 per query after the x_u cache is warm (the common path)."""
    bench = get_workload("masstree")
    estimator = DeadlineEstimator(bench.service_time, n_servers=100)
    gold = ServiceClass("gold", 1.0)
    estimator.budget_table(gold, [1, 10, 100])  # warm the cache

    def estimate():
        return estimator.deadline(1234.5, gold, fanout=100)

    result = benchmark(estimate)
    assert result > 0


def test_deadline_estimation_cold(benchmark):
    """Eq. 1-2 evaluation when a fanout is first seen."""
    bench = get_workload("masstree")
    gold = ServiceClass("gold", 1.0)
    state = {"k": 1}

    def estimate_cold():
        estimator = DeadlineEstimator(bench.service_time, n_servers=2000)
        state["k"] = state["k"] % 1999 + 1
        return estimator.deadline(0.0, gold, fanout=state["k"])

    benchmark(estimate_cold)


def test_edf_queue_throughput(benchmark):
    """Push+pop cycles through the EDF heap."""
    keys = np.random.default_rng(0).random(10_000)

    def churn():
        queue = EDFTaskQueue()
        for i, key in enumerate(keys):
            queue.push(i, (key,))
        while len(queue):
            queue.pop()

    benchmark(churn)


def test_fifo_queue_throughput(benchmark):
    def churn():
        queue = FIFOTaskQueue()
        for i in range(10_000):
            queue.push(i, (0.0,))
        while len(queue):
            queue.pop()

    benchmark(churn)


def test_simulator_throughput(benchmark):
    """End-to-end simulated tasks per second of the event-calendar loop."""
    bench = get_workload("masstree")
    workload = Workload(
        name="micro",
        arrivals=PoissonArrivals(1.0),
        fanout=inverse_proportional_fanout([1, 10, 100]),
        class_mix=single_class_mix(ServiceClass("gold", 1.0)),
        service_time=bench.service_time,
    )
    config = ClusterConfig(
        n_servers=100, policy="tailguard", workload=workload,
        n_queries=10_000, seed=1,
    ).at_load(0.4)

    result = benchmark.pedantic(lambda: simulate(config), rounds=3,
                                iterations=1)
    assert result.tasks_total > 20_000


def test_policy_key_computation(benchmark):
    policy = get_policy("tailguard")
    gold = ServiceClass("gold", 1.0)

    def keys():
        total = 0.0
        for i in range(1000):
            total += policy.queue_key(float(i), gold, float(i) + 0.5)[0]
        return total

    benchmark(keys)
