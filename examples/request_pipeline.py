#!/usr/bin/env python
"""Request-level decomposition (paper Eq. 7) in action.

A user request is a *sequence* of queries — the next one cannot start
until the current one finishes (paper §II.A).  The paper shows the
pre-dequeuing budgets are additive at the request level:

    T_b^R = x_p^{R,SLO} - x_p^{R,u} = sum_i T_{b,i}

This example plans budgets for a three-query request under the three
assignment strategies the library ships, then simulates sequential
requests on the coroutine cluster to compare request-level tail-latency
attainment (the paper's stated future work).

Run:  python examples/request_pipeline.py
"""

from repro import DeadlineEstimator, RequestPlanner, RequestSpec, get_workload
from repro.core.requests import EqualSplit, ProportionalToTail, SloSplit
from repro.experiments.extensions import ext_request_decomposition

N_SERVERS = 20
FANOUTS = (1, 4, 16)

#: A wider cluster and a high-fanout middle query make the naive
#: slo-split budget go visibly negative in the planning demo.
PLAN_SERVERS = 128
PLAN_FANOUTS = (1, 1, 100)


def show_plans() -> None:
    bench = get_workload("masstree")
    estimator = DeadlineEstimator(bench.service_time, n_servers=PLAN_SERVERS)
    request = RequestSpec(0, 0.0, PLAN_FANOUTS, slo_ms=1.0)

    print(f"request: {len(PLAN_FANOUTS)} sequential queries with fanouts "
          f"{PLAN_FANOUTS}, 99th-percentile SLO {request.slo_ms} ms\n")
    for strategy in (EqualSplit(), ProportionalToTail(), SloSplit()):
        plan = RequestPlanner(estimator, strategy).plan(request)
        budgets = ", ".join(f"{b:+.3f}" for b in plan.query_budgets_ms)
        print(f"  {strategy.name:12s} x_R^u={plan.unloaded_request_tail_ms:.3f} "
              f"T_b^R={plan.total_budget_ms:+.3f}  budgets=[{budgets}] ms")
    print("\n(slo-split ignores Eq. 7's additivity: it splits the SLO, "
          "not the budget, and can go negative.)\n")


def run_simulation() -> None:
    print("simulating sequential requests per strategy "
          "(coroutine cluster, Masstree) ...\n")
    report = ext_request_decomposition(
        loads=(0.30, 0.40), n_requests=1_500, fanouts=FANOUTS,
        n_servers=N_SERVERS,
    )
    print(report.format_table())


if __name__ == "__main__":
    show_plans()
    run_simulation()
