#!/usr/bin/env python
"""Edge sensing service on the coroutine simulation kernel.

Recreates the paper's §IV.E Sensing-as-a-Service testbed *generatively*:
each edge node runs a sensing-record datastore (18 months of
temperature/humidity records; tasks fetch 1-30 days of history), task
service time comes from the retrieval-cost model, and each cluster adds
its own network round-trip.  The composable library objects —
``TaskServer`` + ``QueryHandler`` on the DES kernel — are wired directly,
showing the "library" path rather than the batch simulator.

Run:  python examples/edge_sensing_sas.py
"""

import numpy as np

from repro import DeadlineEstimator, QueryHandler, TaskServer, get_policy
from repro.distributions import SumOfIndependent
from repro.metrics import exact_percentile
from repro.sas import NetworkModel, SaSTestbed, SensingTaskModel
from repro.sim import Environment

NODES_PER_CLUSTER = 4
N_QUERIES = 3_000
SERVER_ROOM_LOAD = 0.40

#: Per-cluster node speed factors relative to the Server-room Pis
#: (the Wet-lab has "the higher performing Raspberry Pi's").
SPEED_FACTORS = {
    "server-room": 1.0,
    "wet-lab": 0.37,
    "faculty": 1.10,
    "gta": 1.09,
}


def build_node_distributions(testbed: SaSTestbed, network: NetworkModel):
    """End-to-end task time per node: datastore retrieval + cluster RTT."""
    distributions = {}
    for cluster, nodes in testbed.cluster_nodes.items():
        retrieval = SensingTaskModel.calibrated_to_mean(
            target_mean_ms=75.0 * SPEED_FACTORS[cluster],
            speed_factor=1.0,
        )
        end_to_end = SumOfIndependent([retrieval, network.rtt(cluster)],
                                      resolution=2048)
        for node in nodes:
            distributions[node] = end_to_end
    return distributions


def run_policy(policy_name: str, testbed: SaSTestbed, node_dists, specs):
    env = Environment()
    policy = get_policy(policy_name)
    rng = np.random.default_rng(7)
    server_rngs = rng.spawn(testbed.n_nodes)
    servers = [
        TaskServer(env, node, policy, node_dists[node], server_rngs[node])
        for node in range(testbed.n_nodes)
    ]
    estimator = DeadlineEstimator(dict(node_dists),
                                  server_groups=dict(testbed.node_cluster))
    handler = QueryHandler(env, servers, estimator, policy,
                           np.random.default_rng(11))
    env.process(handler.drive(specs))
    env.run()

    tails = {}
    for case in testbed.use_cases:
        name = case.service_class.name
        latencies = [r.latency for r in handler.completed
                     if r.spec.service_class.name == name]
        tails[name] = (exact_percentile(latencies, 99.0),
                       case.service_class.slo_ms)
    return tails


def main() -> None:
    testbed = SaSTestbed(nodes_per_cluster=NODES_PER_CLUSTER)
    network = NetworkModel()
    node_dists = build_node_distributions(testbed, network)
    specs = testbed.generate_specs(N_QUERIES, SERVER_ROOM_LOAD,
                                   np.random.default_rng(3))

    print(f"SaS testbed: {len(testbed.cluster_nodes)} clusters x "
          f"{NODES_PER_CLUSTER} edge nodes; datastore-driven service "
          f"times; Server-room load {SERVER_ROOM_LOAD:.0%}\n")
    for policy in ("fifo", "tailguard"):
        tails = run_policy(policy, testbed, node_dists, specs)
        print(f"policy={policy}")
        for class_name, (tail, slo) in tails.items():
            status = "met" if tail <= slo else "VIOLATED"
            print(f"    {class_name}: p99={tail:7.1f} ms  "
                  f"(SLO {slo:.0f} ms, {status})")
        print()


if __name__ == "__main__":
    main()
