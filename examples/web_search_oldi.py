#!/usr/bin/env python
"""OLDI web search with admission control under a load surge.

Every query touches every shard (fanout == cluster size, as in the
paper's §IV.C), using the Xapian search-engine service times.  The
script sweeps the offered load past the cluster's capacity and shows
that TailGuard's admission controller keeps both classes inside their
SLOs by shedding exactly the surplus load (paper Fig. 7).

Run:  python examples/web_search_oldi.py
"""


from repro import DeadlineMissRatioAdmission, find_max_load, simulate
from repro.experiments.setups import paper_oldi_config

SLO_INTERACTIVE_MS = 10.0
SLO_BULK_MS = 15.0
N_QUERIES = 20_000


def main() -> None:
    base = paper_oldi_config(
        "xapian", SLO_INTERACTIVE_MS, SLO_BULK_MS,
        policy="tailguard", n_queries=N_QUERIES, seed=1,
    )

    print("searching for the cluster's maximum acceptable load ...")
    max_load = find_max_load(base, tol=0.02).max_load
    at_max = simulate(base.at_load(max(max_load, 0.05)))
    # R_th a bit below the boundary miss ratio sheds early enough that
    # bursts cannot push the tail past the SLO; the control window
    # scales with the SLO (the congestion time scale).
    threshold = max(0.4 * at_max.deadline_miss_ratio(), 1e-4)
    window_ms = 250.0 * SLO_INTERACTIVE_MS
    ctl_interval_ms = 25.0 * SLO_INTERACTIVE_MS
    print(f"  max acceptable load = {max_load:.1%}; "
          f"miss ratio there = {at_max.deadline_miss_ratio():.2%}; "
          f"R_th = {threshold:.2%}\n")

    header = (f"{'offered':>8s} {'accepted':>9s} {'rejected':>9s} "
              f"{'p99 inter':>10s} {'p99 bulk':>9s}  SLOs")
    print(header)
    for offered in (0.40, 0.50, 0.60, 0.70, 0.80):
        admission = DeadlineMissRatioAdmission(
            threshold,
            window_tasks=100_000,
            window_ms=window_ms,
            min_samples=1_000,
            mode="duty-cycle",
            ctl_interval_ms=ctl_interval_ms,
        )
        config = base.at_load(offered).with_admission(admission)
        result = simulate(config)
        p99_interactive = result.tail(99.0, "class-I")
        p99_bulk = result.tail(99.0, "class-II")
        ok = (p99_interactive <= SLO_INTERACTIVE_MS
              and p99_bulk <= SLO_BULK_MS)
        print(f"{offered:8.0%} {result.accepted_load():9.1%} "
              f"{result.rejection_ratio():9.1%} "
              f"{p99_interactive:9.2f}ms {p99_bulk:8.2f}ms  "
              f"{'met' if ok else 'VIOLATED'}")

    print("\nBeyond capacity the controller sheds the surplus and both "
          "classes keep their tail SLOs.")


if __name__ == "__main__":
    main()
