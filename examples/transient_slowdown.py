#!/usr/bin/env python
"""Transient analysis: a rack slows down mid-run.

Injects a 2x slowdown on 20 of 100 servers during the middle third of
a Masstree run and uses the timeline instrumentation plus windowed
tail analysis to watch the system absorb and recover from the
transient, comparing FIFO against TailGuard.

Run:  python examples/transient_slowdown.py
"""


from repro import simulate
from repro.cluster.config import ServicePerturbation
from repro.experiments.setups import paper_two_class_config

LOAD = 0.40
SLOW_SERVERS = tuple(range(20))
SLOW_FACTOR = 2.0


def main() -> None:
    base = paper_two_class_config("masstree", 1.2, policy="tailguard",
                                  n_queries=40_000, seed=1).at_load(LOAD)
    probe = simulate(base)
    horizon = float(probe.arrival.max())
    window = (horizon / 3.0, 2.0 * horizon / 3.0)
    perturbation = ServicePerturbation(SLOW_SERVERS, window[0], window[1],
                                       SLOW_FACTOR)
    phases = {
        "before": (0.0, window[0]),
        "during": window,
        "after": (window[1], horizon + 1.0),
    }

    print(f"{len(SLOW_SERVERS)} servers run {SLOW_FACTOR}x slower during "
          f"[{window[0]:.0f}, {window[1]:.0f}) ms of a {horizon:.0f} ms run "
          f"at {LOAD:.0%} load\n")

    for policy in ("fifo", "tailguard"):
        config = base.evolve(
            policy=policy,
            perturbations=(perturbation,),
            timeline_interval_ms=horizon / 150.0,
        )
        result = simulate(config)
        print(f"policy={policy}")
        for phase, (start, end) in phases.items():
            tail = result.tail_between(start, end, 99.0, "class-I")
            queue = result.timeline.between(start, end)
            print(f"    {phase:7s} class-I p99={tail:6.3f} ms   "
                  f"mean queued tasks={queue.queued_tasks.mean():7.1f}   "
                  f"peak={queue.peak_queue()}")
        print()

    print("TailGuard keeps the transient's tail inflation smaller than "
          "FIFO's at the same backlog, and both recover after the window.")


if __name__ == "__main__":
    main()
