#!/usr/bin/env python
"""Social-networking workload: Zipf fanouts and two service classes.

Models the Facebook-style service of the paper's §II.A — page queries
fan out to "one to several hundreds" of servers, 65% under 20 — as a
truncated Zipf fanout distribution, with premium (tight SLO) and free
(loose SLO) user classes.  Compares all four queuing policies at one
load and reports each policy's maximum feasible load.

Run:  python examples/social_network.py
"""

from repro import (
    ClusterConfig,
    PoissonArrivals,
    ServiceClass,
    Workload,
    find_max_load,
    get_workload,
    simulate,
    uniform_class_mix,
)
from repro.workloads import ZipfFanout

N_SERVERS = 300
LOAD = 0.35
POLICIES = ("fifo", "priq", "t-edf", "tailguard")


def build_workload() -> Workload:
    bench = get_workload("masstree")  # in-memory store backs the graph
    premium = ServiceClass("premium", slo_ms=1.0, priority=0)
    free = ServiceClass("free", slo_ms=2.0, priority=1)
    return Workload(
        name="social-network",
        arrivals=PoissonArrivals(1.0),
        fanout=ZipfFanout(alpha=1.3, k_max=N_SERVERS),
        class_mix=uniform_class_mix([premium, free]),
        service_time=bench.service_time,
    )


def main() -> None:
    workload = build_workload()
    share_under_20 = sum(p for k, p in workload.fanout.pmf().items()
                         if k < 20)
    print(f"fanout model: Zipf(1.3) truncated at {N_SERVERS}; "
          f"{share_under_20:.0%} of queries fan out to < 20 servers "
          f"(paper: ~65%)\n")

    print(f"--- per-class p99 at {LOAD:.0%} load ---")
    for policy in POLICIES:
        config = ClusterConfig(
            n_servers=N_SERVERS, policy=policy, workload=workload,
            n_queries=20_000, seed=1,
        ).at_load(LOAD)
        result = simulate(config)
        premium = result.tail(99.0, "premium")
        free = result.tail(99.0, "free")
        print(f"  {policy:9s}  premium p99={premium:.3f} ms (SLO 1.0)  "
              f"free p99={free:.3f} ms (SLO 2.0)")

    # With a long-tailed fanout distribution individual fanout values
    # have too few samples for a stable p99, so SLO feasibility is
    # checked per fanout *bucket*.
    buckets = (1, 2, 5, 10, 20, 50, 100)
    print("\n--- maximum load meeting both SLOs (per fanout bucket) ---")
    for policy in POLICIES:
        config = ClusterConfig(
            n_servers=N_SERVERS, policy=policy, workload=workload,
            n_queries=20_000, seed=1,
        )
        outcome = find_max_load(config, tol=0.02, fanout_buckets=buckets)
        print(f"  {policy:9s}  max load = {outcome.max_load:.2%}")


if __name__ == "__main__":
    main()
