#!/usr/bin/env python
"""Quickstart: schedule a fanout workload with TailGuard vs FIFO.

Builds the paper's §IV.B single-class workload (Masstree service times,
fanouts {1, 10, 100} with P(k) ∝ 1/k), runs both queuing policies at
the same offered load on a 100-server cluster, and prints the per-type
99th-percentile tails.  TailGuard equalizes the types; FIFO lets the
fanout-100 type blow past the SLO first.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterConfig,
    PoissonArrivals,
    ServiceClass,
    Workload,
    get_workload,
    inverse_proportional_fanout,
    simulate,
    single_class_mix,
)

N_SERVERS = 100
LOAD = 0.40
SLO_MS = 1.0


def build_workload() -> Workload:
    bench = get_workload("masstree")
    return Workload(
        name="quickstart",
        arrivals=PoissonArrivals(1.0),  # re-rated by at_load below
        fanout=inverse_proportional_fanout([1, 10, 100]),
        class_mix=single_class_mix(ServiceClass("gold", slo_ms=SLO_MS)),
        service_time=bench.service_time,
    )


def main() -> None:
    workload = build_workload()
    print(f"cluster: {N_SERVERS} servers, offered load {LOAD:.0%}, "
          f"99th-percentile SLO {SLO_MS} ms\n")
    for policy in ("fifo", "tailguard"):
        config = ClusterConfig(
            n_servers=N_SERVERS,
            policy=policy,
            workload=workload,
            n_queries=40_000,
            seed=1,
        ).at_load(LOAD)
        result = simulate(config)
        print(f"policy={policy:9s}  utilization={result.utilization():.3f}  "
              f"deadline-miss={result.deadline_miss_ratio():.4f}")
        for (class_name, fanout), tail in result.per_type_tails().items():
            status = "OK " if tail <= SLO_MS else "VIOLATED"
            print(f"    fanout={fanout:<4d} p99={tail:.3f} ms  [{status}]")
        print()
    print("TailGuard trades slack from low-fanout queries to the "
          "fanout-100 type, whose tail decides SLO feasibility.")


if __name__ == "__main__":
    main()
